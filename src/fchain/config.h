// All FChain tuning knobs in one place, with the paper's defaults
// (§III-A "we configure the FChain system as follows").
#pragma once

#include <cstddef>

#include "common/time_series.h"
#include "common/types.h"
#include "markov/predictor.h"
#include "signal/burst.h"
#include "signal/cusum.h"
#include "signal/outlier.h"
#include "signal/tangent.h"

namespace fchain::core {

struct FChainConfig {
  /// Look-back window W: seconds of history before the SLO violation that
  /// are searched for abnormal change points (paper default: 100 s; 500 s
  /// for the slowly manifesting Hadoop DiskHog).
  TimeSec lookback_sec = 100;

  /// Burst extraction half-window Q around each candidate change point.
  TimeSec burst_half_window_sec = 20;

  /// Two components whose abnormal onsets differ by at most this much are
  /// treated as *concurrent* faults (paper default: 2 s).
  TimeSec concurrency_threshold_sec = 2;

  /// Moving-average half-width applied before change point detection
  /// (PAL-style smoothing; §III-C documents its side effect).
  std::size_t smooth_half_window = 2;

  /// Adaptive smoothing (the paper's §III-C ongoing work): pick the
  /// smoothing width per metric from its jitter level — heavy smoothing
  /// only where sample-to-sample noise dominates, none where the signal is
  /// already smooth (which is where smoothing distorts onset times and can
  /// flip the propagation order).
  bool adaptive_smoothing = false;

  /// Burst threshold parameters (top-90 % frequencies, 90th percentile).
  signal::BurstConfig burst;

  /// Safety margin on the dynamic threshold: a change point is abnormal only
  /// when its observed prediction error exceeds `error_margin x expected`.
  /// Normal change points routinely exceed the raw burst magnitude by a few
  /// percent (the predictor also carries quantization error); genuine fault
  /// manifestations exceed it severalfold.
  double error_margin = 1.5;

  /// Floor under the dynamic threshold taken from the predictor's own
  /// recent track record: the given percentile of the prediction errors over
  /// `history_error_window_sec` seconds *before* the look-back window. A
  /// smoothly wandering metric has almost no high-frequency burst energy yet
  /// still mispredicts routinely; errors below what the model produces on a
  /// normal day cannot indicate a fault. Set the window to 0 to disable.
  TimeSec history_error_window_sec = 900;
  double history_error_percentile = 98.0;

  /// Persistence check: FChain is invoked while the SLO is *being* violated,
  /// so a genuine fault manifestation must still hold at tv. A candidate
  /// abnormal change point is discarded when the window's final seconds have
  /// drifted back toward the pre-change level (a decayed transient such as a
  /// flash crowd). The deviation at tv must keep the change's sign and at
  /// least this fraction of its magnitude. Set to 0 to disable.
  double persistence_fraction = 0.5;
  /// Seconds at the window tail / before the change point that are averaged
  /// for the persistence comparison.
  std::size_t persistence_probe_sec = 10;

  /// When several change points pass the predictability test, anchor on the
  /// one with the highest observed/expected error ratio (the clearest fault
  /// signature) and let the tangent rollback recover the onset. When false,
  /// the earliest passing point is used directly.
  bool select_strongest = true;

  /// Change point detection and outlier filtering.
  signal::CusumConfig cusum;
  signal::OutlierConfig outlier;

  /// Tangent-based rollback of the onset time.
  signal::RollbackConfig rollback;

  /// Normal fluctuation model (PRESS-style predictor).
  markov::PredictorConfig predictor;

  // --- Telemetry hardening (unreliable monitoring streams) ---------------

  /// Reconstruction policy for seconds missing from a slave's 1 Hz sample
  /// stream. Gap-filled samples also feed the fluctuation model so the
  /// prediction-error series stays aligned with the metric series.
  GapFill gap_fill = GapFill::LastValue;

  /// A sample whose timestamp jumps more than this far past the end of the
  /// series is treated as clock corruption and discarded instead of
  /// synthesizing an absurd number of fill samples.
  TimeSec max_gap_fill_sec = 3600;

  // --- Ablation / baseline switches -------------------------------------

  /// Disable to skip the tangent rollback (ablation).
  bool use_rollback = true;

  /// Disable to ignore dependency information in pinpointing (ablation;
  /// PAL behaves this way).
  bool use_dependency = true;

  /// Disable the predictability (prediction-error) filter entirely; outlier
  /// change points pass straight through (PAL behaves this way).
  bool use_predictability = true;

  /// When >= 0, replaces the dynamic burst threshold with a *fixed*
  /// prediction error threshold expressed as a multiple of the look-back
  /// window's robust scale (the Fixed-Filtering baseline sweeps this).
  double fixed_error_threshold = -1.0;

  /// Enable the external-factor (workload change vs fault) classifier.
  bool detect_external_factor = true;

  /// External events (workload surges, shared-service failures) hit every
  /// component near-simultaneously; fault propagation is staggered. The
  /// external verdict therefore also requires the abnormal onsets to span at
  /// most this many seconds.
  TimeSec external_max_spread_sec = 20;
};

}  // namespace fchain::core
