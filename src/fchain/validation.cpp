#include "fchain/validation.h"

#include <algorithm>
#include <cmath>

namespace fchain::core {

namespace {

/// Applies the resource scaling implied by the fault-related metrics.
void applyScaling(sim::Simulation& sim, const ComponentFinding& finding,
                  double factor) {
  sim::FaultState& fault = sim.app().faultStateOf(finding.component);
  for (const MetricFinding& metric : finding.metrics) {
    switch (metric.metric) {
      case MetricKind::CpuUsage:
      case MetricKind::NetworkIn:
      case MetricKind::NetworkOut:
        // Network pressure is absorbed by CPU headroom in the VM model.
        fault.scale_cpu = std::max(fault.scale_cpu, factor);
        break;
      case MetricKind::MemoryUsage:
        fault.scale_mem = std::max(fault.scale_mem, factor);
        break;
      case MetricKind::DiskRead:
      case MetricKind::DiskWrite:
        fault.scale_disk = std::max(fault.scale_disk, factor);
        break;
    }
  }
}

/// Mean SLO signal (latency, or negated progress rate) over a what-if run's
/// final third, where the scaling impact has settled.
double settledSloSignal(sim::Simulation sim, std::size_t observe_sec) {
  const TimeSec until = sim.now() + static_cast<TimeSec>(observe_sec);
  const TimeSec settle =
      sim.now() + static_cast<TimeSec>(observe_sec * 2 / 3);
  double sum = 0.0;
  std::size_t count = 0;
  while (sim.now() < until) {
    sim.step();
    if (sim.now() >= settle) {
      sum += sim.sloSignal();
      ++count;
    }
  }
  return count == 0 ? 0.0 : sum / static_cast<double>(count);
}

}  // namespace

bool OnlineValidator::validateComponent(const sim::Simulation& snapshot,
                                        const ComponentFinding& finding) const {
  sim::Simulation scaled = snapshot;
  applyScaling(scaled, finding, config_.scale_factor);
  const double scaled_signal =
      settledSloSignal(std::move(scaled), config_.observe_sec);
  const double control_signal =
      settledSloSignal(snapshot, config_.observe_sec);

  if (snapshot.batch()) {
    // Batch SLO signal is -progress_rate (more negative = healthier).
    return scaled_signal < control_signal - 1e-5;
  }
  return scaled_signal < config_.improvement_ratio * control_signal;
}

std::vector<ComponentId> OnlineValidator::validate(
    const sim::Simulation& snapshot, const PinpointResult& result) const {
  // Collect the findings behind the pinpointed set (they carry the
  // fault-related metrics, hence which resource to scale).
  std::vector<const ComponentFinding*> findings;
  for (ComponentId id : result.pinpointed) {
    const auto finding =
        std::find_if(result.chain.begin(), result.chain.end(),
                     [id](const ComponentFinding& f) {
                       return f.component == id;
                     });
    if (finding != result.chain.end()) findings.push_back(&*finding);
  }
  if (findings.empty()) return {};

  if (findings.size() == 1) {
    return validateComponent(snapshot, *findings.front())
               ? std::vector<ComponentId>{findings.front()->component}
               : std::vector<ComponentId>{};
  }

  // Group validation. All what-if runs replay identical noise streams, so
  // the comparisons are deterministic.
  auto signalWithScaling =
      [&](const std::vector<const ComponentFinding*>& scaled_set) {
        sim::Simulation what_if = snapshot;
        for (const ComponentFinding* finding : scaled_set) {
          applyScaling(what_if, *finding, config_.scale_factor);
        }
        return settledSloSignal(std::move(what_if), config_.observe_sec);
      };

  const double signal_none = signalWithScaling({});
  const double signal_all = signalWithScaling(findings);
  if (signal_all >= config_.improvement_ratio * signal_none) {
    // Scaling everything did not recover the SLO: the validation cannot
    // prove or refute anything, so the pinpointed set stands.
    return result.pinpointed;
  }

  // Leave-one-out attribution: removing a true culprit's scaling gives back
  // a noticeable share of the recovered SLO headroom.
  const double headroom = signal_none - signal_all;
  std::vector<ComponentId> confirmed;
  for (std::size_t skip = 0; skip < findings.size(); ++skip) {
    std::vector<const ComponentFinding*> without;
    for (std::size_t i = 0; i < findings.size(); ++i) {
      if (i != skip) without.push_back(findings[i]);
    }
    const double signal_without = signalWithScaling(without);
    if (signal_without >
        signal_all + (1.0 - config_.improvement_ratio) * headroom) {
      confirmed.push_back(findings[skip]->component);
    }
  }
  std::sort(confirmed.begin(), confirmed.end());
  return confirmed;
}

}  // namespace fchain::core
