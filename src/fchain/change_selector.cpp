#include "fchain/change_selector.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/stats.h"
#include "obs/trace.h"
#include "signal/burst.h"
#include "signal/scratch.h"
#include "signal/smoothing.h"

namespace fchain::core {

namespace {

/// Peak observed prediction error near the change point. The moving-average
/// smoothing displaces the detected index by up to its half-width, so the
/// probe neighbourhood must cover that smear or it misses the error spike.
double observedError(const TimeSeries& errors, TimeSec t,
                     std::size_t smear) {
  const auto radius = static_cast<TimeSec>(smear + 1);
  double peak = 0.0;
  for (TimeSec u = t - radius; u <= t + radius; ++u) {
    if (errors.contains(u)) peak = std::max(peak, errors.at(u));
  }
  return peak;
}

/// True when the level shift introduced at `index` still holds at the end of
/// the window: the tail deviates from the pre-change level in the shift's
/// direction by at least `fraction` of the shift. Rejects transients (flash
/// crowds, spill spikes) that have already decayed by violation time.
bool changePersists(std::span<const double> window,
                    const signal::ChangePoint& point, double fraction,
                    std::size_t probe) {
  if (fraction <= 0.0) return true;
  const std::size_t idx = point.index;
  if (idx == 0 || idx >= window.size()) return true;
  const std::size_t pre_from = idx > probe ? idx - probe : 0;
  const double pre = fchain::mean(window.subspan(pre_from, idx - pre_from));
  const std::size_t tail_len = std::min(probe, window.size() - idx);
  const double tail =
      fchain::mean(window.subspan(window.size() - tail_len, tail_len));
  const double residual = tail - pre;
  if (point.shift > 0.0) return residual >= fraction * point.shift;
  return residual <= fraction * point.shift;  // both negative
}

/// Jitter-adaptive smoothing width: the ratio of first-difference spread to
/// overall spread distinguishes sample-to-sample noise (ratio near sqrt(2)
/// for white noise) from smooth structure (ratio near 0).
std::size_t adaptiveSmoothHalf(std::span<const double> window,
                               signal::SignalScratch& scratch) {
  if (window.size() < 8) return 0;
  std::vector<double>& diffs = scratch.diffs(window.size() - 1);
  for (std::size_t i = 1; i < window.size(); ++i) {
    diffs[i - 1] = window[i] - window[i - 1];
  }
  const double diff_mad =
      fchain::medianAbsDeviation(diffs, scratch.statsA(), scratch.statsB());
  const double level_mad =
      std::max(1e-9, fchain::medianAbsDeviation(window, scratch.statsA(),
                                                scratch.statsB()));
  const double jitter = diff_mad / level_mad;
  if (jitter >= 0.8) return 3;  // noise-dominated: smooth hard
  if (jitter >= 0.3) return 2;
  if (jitter >= 0.1) return 1;
  return 0;  // already smooth: smoothing would only distort onsets
}

}  // namespace

std::optional<MetricFinding> AbnormalChangeSelector::analyzeMetric(
    MetricKind kind, const TimeSeries& series, const TimeSeries& errors,
    TimeSec violation_time) const {
  FCHAIN_SPAN_VAR(span, "selector.metric");
  span.arg("metric", static_cast<std::int64_t>(metricIndex(kind)));
  // All buffers for this metric come from the calling thread's arena; every
  // lane is consumed before the next kernel overwrites it (see the lane
  // assignments in scratch.h).
  signal::SignalScratch& scratch = signal::threadScratch();
  const TimeSec window_start =
      std::max(series.startTime(), violation_time - config_.lookback_sec);
  const TimeSec window_end = std::min(series.endTime(), violation_time + 1);
  const auto raw = series.window(window_start, window_end);
  if (raw.size() < config_.cusum.min_segment * 2) return std::nullopt;

  // 1. Smooth + detect change points.
  const std::size_t smooth_half = config_.adaptive_smoothing
                                      ? adaptiveSmoothHalf(raw, scratch)
                                      : config_.smooth_half_window;
  const std::vector<double>& smoothed = signal::movingAverageInto(
      raw, smooth_half, scratch.smoothed(raw.size()));
  const std::vector<signal::ChangePoint>& points =
      signal::detectChangePointsInto(smoothed, config_.cusum, scratch,
                                     scratch.points());
  if (points.empty()) return std::nullopt;

  // 2. Keep change-magnitude outliers.
  const std::vector<signal::ChangePoint>& outliers =
      signal::outlierChangePointsInto(points, config_.outlier, scratch,
                                      scratch.outliers());
  if (outliers.empty()) return std::nullopt;

  // Robust scale of the window (used by the Fixed-Filtering variant).
  const double window_scale =
      std::max(1e-9, fchain::medianAbsDeviation(raw, scratch.statsA(),
                                                scratch.statsB()) *
                         1.4826);

  // Historical-error floor: what the predictor typically gets wrong on this
  // metric during normal operation, sampled before the look-back window so
  // the fault cannot contaminate it. Two subtleties make this comparable to
  // the observed statistic: (a) the observation is a *max* over the probe
  // neighbourhood, so the floor is built from the same-width block maxima;
  // (b) a longer look-back window offers proportionally more candidate
  // change points (a multiple-testing effect), so the floor percentile
  // tightens with the window length.
  double error_floor = 0.0;
  if (config_.history_error_window_sec > 0) {
    const auto history = errors.window(
        window_start - config_.history_error_window_sec, window_start);
    if (history.size() >= 100) {
      const auto radius =
          static_cast<std::ptrdiff_t>(config_.smooth_half_window + 1);
      std::vector<double>& block_max = scratch.blockMax(history.size());
      for (std::ptrdiff_t i = 0;
           i < static_cast<std::ptrdiff_t>(history.size()); ++i) {
        double peak = 0.0;
        const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(0, i - radius);
        const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(
            static_cast<std::ptrdiff_t>(history.size()) - 1, i + radius);
        for (std::ptrdiff_t j = lo; j <= hi; ++j) {
          peak = std::max(peak, history[static_cast<std::size_t>(j)]);
        }
        block_max[static_cast<std::size_t>(i)] = peak;
      }
      const double window_adjusted_pct =
          100.0 * (1.0 - 2.0 / static_cast<double>(raw.size()));
      error_floor = fchain::percentileInPlace(
          block_max,
          std::max(config_.history_error_percentile, window_adjusted_pct));
    }
  }

  // 3. Predictability test: observed vs expected prediction error. Among
  //    the passing candidates, anchor on the strongest signature (or the
  //    earliest, when select_strongest is off).
  std::optional<signal::ChangePoint> selected;
  double selected_observed = 0.0;
  double selected_expected = 0.0;
  double best_ratio = 0.0;
  for (const auto& candidate : outliers) {
    const TimeSec cp_time =
        window_start + static_cast<TimeSec>(candidate.index);
    if (!changePersists(smoothed, candidate, config_.persistence_fraction,
                        config_.persistence_probe_sec)) {
      continue;
    }
    if (!config_.use_predictability) {
      selected = candidate;
      selected_observed = observedError(errors, cp_time, smooth_half);
      selected_expected = 0.0;
      break;  // PAL mode: earliest outlier wins unconditionally
    }
    const double observed =
        observedError(errors, cp_time, smooth_half);
    double expected;
    if (config_.fixed_error_threshold >= 0.0) {
      expected = config_.fixed_error_threshold * window_scale;
    } else {
      // Dynamic threshold: burst magnitude of the +-Q window around the
      // candidate, taken from the *raw* (unsmoothed) series, with the
      // configured safety margin on top.
      const auto burst_window =
          series.window(cp_time - config_.burst_half_window_sec,
                        cp_time + config_.burst_half_window_sec + 1);
      expected =
          config_.error_margin *
          std::max(error_floor, signal::expectedPredictionError(
                                    burst_window, config_.burst, scratch));
    }
    if (observed > expected) {
      const double ratio = observed / std::max(1e-12, expected);
      if (!selected.has_value() || ratio > best_ratio) {
        selected = candidate;
        selected_observed = observed;
        selected_expected = expected;
        best_ratio = ratio;
      }
      if (!config_.select_strongest) break;  // earliest abnormal point
    }
  }
  if (!selected.has_value()) return std::nullopt;

  // 4. Tangent-based rollback across *all* detected change points preceding
  //    the selected one.
  std::size_t selected_pos = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].index == selected->index) {
      selected_pos = i;
      break;
    }
  }
  std::size_t onset_pos = selected_pos;
  if (config_.use_rollback) {
    onset_pos = signal::rollbackOnset(smoothed, points, selected_pos,
                                      config_.rollback, scratch);
  }

  MetricFinding finding;
  finding.metric = kind;
  finding.change_point =
      window_start + static_cast<TimeSec>(selected->index);
  finding.onset = window_start + static_cast<TimeSec>(points[onset_pos].index);
  finding.trend = selected->shift > 0 ? Trend::Up : Trend::Down;
  finding.prediction_error = selected_observed;
  finding.expected_error = selected_expected;
  return finding;
}

std::optional<ComponentFinding> AbnormalChangeSelector::analyzeComponent(
    ComponentId id, const MetricSeries& series,
    const NormalFluctuationModel& model, TimeSec violation_time) const {
  FCHAIN_SPAN_VAR(span, "selector.component");
  span.arg("component", static_cast<std::int64_t>(id));
  ComponentFinding finding;
  finding.component = id;
  for (MetricKind kind : kAllMetrics) {
    auto metric_finding = analyzeMetric(kind, series.of(kind),
                                        model.errorsOf(kind), violation_time);
    if (metric_finding.has_value()) {
      finding.metrics.push_back(*metric_finding);
    }
  }
  // Publish any arena growth this component's analysis caused; in steady
  // state this is a no-op and the grow counter stops moving.
  signal::threadScratch().accountGrowth();
  if (finding.metrics.empty()) return std::nullopt;

  // The component's abnormal change starts when its first metric does.
  const auto earliest = std::min_element(
      finding.metrics.begin(), finding.metrics.end(),
      [](const MetricFinding& a, const MetricFinding& b) {
        return a.onset < b.onset;
      });
  finding.onset = earliest->onset;
  finding.trend = earliest->trend;
  return finding;
}

}  // namespace fchain::core
