// FChainSlave::snapshot() / fromSnapshot(): the capture/restore half of the
// crash-tolerance story. The byte layout lives in persist/snapshot.h; this
// file owns the mapping between a live slave's private state and that value
// type, via the persist::StateAccess friend bridge.
#include "fchain/slave.h"
#include "persist/state_access.h"

namespace fchain::core {

persist::SlaveSnapshot FChainSlave::snapshot(std::uint64_t epoch) const {
  persist::SlaveSnapshot snap;
  snap.host = host_;
  snap.epoch = epoch;
  snap.vms.reserve(vms_.size());
  // vms_ is id-sorted, so snapshot order matches the old map layout exactly.
  for (const VmEntry& entry : vms_) {
    const VmState& vm = entry.state;
    persist::VmSnapshotState out;
    out.component = entry.id;
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      const TimeSeries& series = vm.series.of(kAllMetrics[m]);
      out.series[m].start = series.startTime();
      out.series[m].values.assign(series.values().begin(),
                                  series.values().end());
      out.predictors[m] =
          persist::StateAccess::capture(vm.model.predictorOf(kAllMetrics[m]));
    }
    out.gaps_filled = vm.stats.gaps_filled;
    out.quarantined = vm.stats.quarantined;
    out.duplicates = vm.stats.duplicates;
    out.stale_dropped = vm.stats.stale_dropped;
    out.future_dropped = vm.stats.future_dropped;
    snap.vms.push_back(std::move(out));
  }
  return snap;
}

FChainSlave FChainSlave::fromSnapshot(const persist::SlaveSnapshot& snapshot,
                                      FChainConfig config) {
  FChainSlave slave(snapshot.host, std::move(config));
  for (const persist::VmSnapshotState& vm : snapshot.vms) {
    // Register through the normal path first, then overwrite the learned
    // state field by field with the persisted bits.
    slave.addComponent(vm.component, vm.series[0].start);
    VmState& state = *slave.findVm(vm.component);
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      state.series.of(kAllMetrics[m]) =
          TimeSeries(vm.series[m].start, vm.series[m].values);
      persist::StateAccess::predictors(state.model)[m] =
          persist::StateAccess::restore(vm.predictors[m]);
    }
    state.stats.gaps_filled = static_cast<std::size_t>(vm.gaps_filled);
    state.stats.quarantined = static_cast<std::size_t>(vm.quarantined);
    state.stats.duplicates = static_cast<std::size_t>(vm.duplicates);
    state.stats.stale_dropped = static_cast<std::size_t>(vm.stale_dropped);
    state.stats.future_dropped = static_cast<std::size_t>(vm.future_dropped);
  }
  return slave;
}

}  // namespace fchain::core
