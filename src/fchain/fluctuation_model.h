// Slave-side normal fluctuation modeling (paper §II-A).
//
// One online Markov-chain predictor per monitored metric, updated every
// second from Domain 0. Normal workload fluctuations are transitions the
// model has seen and learned, so their prediction errors stay small; fault-
// induced fluctuations are novel and predict poorly. The per-second absolute
// prediction error series is the input to the abnormal change point
// selector's predictability test.
#pragma once

#include <array>

#include "common/time_series.h"
#include "markov/predictor.h"

namespace fchain::persist {
struct StateAccess;
}

namespace fchain::core {

class NormalFluctuationModel {
 public:
  explicit NormalFluctuationModel(TimeSec start_time,
                                  const markov::PredictorConfig& config = {});

  /// Feeds one 1 Hz sample bundle (all six metrics of one VM).
  void observe(const std::array<double, kMetricCount>& sample);

  /// Absolute prediction error per second for one metric.
  const TimeSeries& errorsOf(MetricKind kind) const {
    return predictors_[metricIndex(kind)].errors();
  }

  const markov::OnlinePredictor& predictorOf(MetricKind kind) const {
    return predictors_[metricIndex(kind)];
  }

  TimeSec endTime() const { return predictors_[0].errors().endTime(); }

 private:
  /// Snapshot/restore bridge (persist/state_access.h).
  friend struct ::fchain::persist::StateAccess;

  std::array<markov::OnlinePredictor, kMetricCount> predictors_;
};

/// Replays a recorded metric series through a fresh model up to (excluding)
/// `until`; the offline-evaluation path uses this to reconstruct what a
/// continuously running slave would have had at violation time.
NormalFluctuationModel replayModel(const MetricSeries& series, TimeSec until,
                                   const markov::PredictorConfig& config = {});

}  // namespace fchain::core
