// Umbrella header for the FChain core library, plus the one-call offline
// entry point used by the evaluation harness: run the whole FChain pipeline
// (replayed fluctuation models -> abnormal change point selection ->
// integrated pinpointing) over a recorded run.
#pragma once

#include "fchain/change_selector.h"
#include "fchain/config.h"
#include "fchain/fluctuation_model.h"
#include "fchain/master.h"
#include "fchain/pinpoint.h"
#include "fchain/slave.h"
#include "fchain/validation.h"
#include "sim/simulator.h"

namespace fchain::core {

/// Runs FChain end to end over a recorded run. `dependencies` may be null
/// (chronology-only fallback). Uses the record's SLO violation time; returns
/// an empty result when the run never violated its SLO.
PinpointResult localizeRecord(const sim::RunRecord& record,
                              const netdep::DependencyGraph* dependencies,
                              const FChainConfig& config = {});

}  // namespace fchain::core
