// Integrated faulty component pinpointing (paper §II-C).
//
// 1. Sort abnormal components by onset into a propagation chain and pinpoint
//    the head (earliest manifestation).
// 2. Pinpoint every component whose onset is within the concurrency
//    threshold of the chain head (concurrent faults).
// 3. External-factor check: when *every* component is abnormal with the same
//    trend direction, blame a workload increase (upward) or a shared-service
//    problem (downward) instead of any component.
// 4. Dependency refinement: an abnormal component with no dependency path to
//    or from any pinpointed component cannot have been reached by anomaly
//    propagation, so it carries an independent fault and is pinpointed too.
//    When dependency information is unavailable (e.g. stream processing
//    defeats the discovery tool), FChain falls back to chronology alone.
#pragma once

#include <optional>
#include <vector>

#include "fchain/change_selector.h"
#include "netdep/dependency.h"

namespace fchain::core {

struct PinpointResult {
  std::vector<ComponentId> pinpointed;  ///< sorted ascending
  /// All abnormal components, sorted by onset (the propagation chain).
  std::vector<ComponentFinding> chain;
  bool external_factor = false;
  Trend external_trend = Trend::Flat;
  /// Fraction of the application's components whose look-back windows were
  /// actually analyzed. 1.0 is full coverage; less means some slaves never
  /// answered (telemetry-degraded mode) and the verdict is correspondingly
  /// less trustworthy — it is never silently passed off as complete.
  double coverage = 1.0;
  /// Components with no analysis result: unmonitored, or their slave stayed
  /// unreachable after retries. Sorted ascending.
  std::vector<ComponentId> unanalyzed;
};

class IntegratedPinpointer {
 public:
  explicit IntegratedPinpointer(FChainConfig config = {})
      : config_(std::move(config)) {}

  /// `findings`: abnormal components from the selectors (any order).
  /// `total_components`: application size, for the external-factor check.
  /// `dependencies`: discovered dependency graph; pass nullptr (or an empty
  /// graph) when unavailable.
  /// `analyzed_components`: how many components actually produced an
  /// analysis (degraded mode); defaults to full coverage. The external-
  /// factor verdict requires full coverage — "every component we could
  /// still see is abnormal" is not evidence that *every* component is.
  PinpointResult pinpoint(
      std::vector<ComponentFinding> findings, std::size_t total_components,
      const netdep::DependencyGraph* dependencies,
      std::optional<std::size_t> analyzed_components = std::nullopt) const;

 private:
  FChainConfig config_;
};

}  // namespace fchain::core
