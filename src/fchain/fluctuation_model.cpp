#include "fchain/fluctuation_model.h"

#include <algorithm>

namespace fchain::core {

namespace {
std::array<markov::OnlinePredictor, kMetricCount> makePredictors(
    TimeSec start_time, const markov::PredictorConfig& config) {
  return {markov::OnlinePredictor(start_time, config),
          markov::OnlinePredictor(start_time, config),
          markov::OnlinePredictor(start_time, config),
          markov::OnlinePredictor(start_time, config),
          markov::OnlinePredictor(start_time, config),
          markov::OnlinePredictor(start_time, config)};
}
}  // namespace

NormalFluctuationModel::NormalFluctuationModel(
    TimeSec start_time, const markov::PredictorConfig& config)
    : predictors_(makePredictors(start_time, config)) {}

void NormalFluctuationModel::observe(
    const std::array<double, kMetricCount>& sample) {
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    predictors_[m].observe(sample[m]);
  }
}

NormalFluctuationModel replayModel(const MetricSeries& series, TimeSec until,
                                   const markov::PredictorConfig& config) {
  const TimeSec start = series.of(MetricKind::CpuUsage).startTime();
  NormalFluctuationModel model(start, config);
  const TimeSec end = std::min(until, series.endTime());
  for (TimeSec t = start; t < end; ++t) {
    std::array<double, kMetricCount> sample{};
    for (MetricKind kind : kAllMetrics) {
      sample[metricIndex(kind)] = series.of(kind).at(t);
    }
    model.observe(sample);
  }
  return model;
}

}  // namespace fchain::core
