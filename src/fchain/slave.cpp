#include "fchain/slave.h"

namespace fchain::core {

void FChainSlave::addComponent(ComponentId id, TimeSec start_time) {
  vms_.emplace(id,
               VmState{MetricSeries(start_time),
                       NormalFluctuationModel(
                           start_time, selector_.config().predictor)});
}

std::vector<ComponentId> FChainSlave::components() const {
  std::vector<ComponentId> ids;
  ids.reserve(vms_.size());
  for (const auto& [id, vm] : vms_) ids.push_back(id);
  return ids;
}

void FChainSlave::ingest(ComponentId id,
                         const std::array<double, kMetricCount>& sample) {
  auto it = vms_.find(id);
  if (it == vms_.end()) return;
  it->second.series.append(sample);
  it->second.model.observe(sample);
}

std::optional<ComponentFinding> FChainSlave::analyze(
    ComponentId id, TimeSec violation_time) const {
  const auto it = vms_.find(id);
  if (it == vms_.end()) return std::nullopt;
  return selector_.analyzeComponent(id, it->second.series, it->second.model,
                                    violation_time);
}

}  // namespace fchain::core
