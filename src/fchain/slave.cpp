#include "fchain/slave.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "obs/trace.h"
#include "runtime/worker_pool.h"

namespace fchain::core {

FChainSlave::~FChainSlave() = default;
FChainSlave::FChainSlave(FChainSlave&&) noexcept = default;
FChainSlave& FChainSlave::operator=(FChainSlave&&) noexcept = default;

namespace {

/// First entry with entry.id >= id in the id-sorted fleet vector.
template <typename Vec>
auto lowerBoundVm(Vec& vms, ComponentId id) {
  return std::lower_bound(
      vms.begin(), vms.end(), id,
      [](const auto& entry, ComponentId target) { return entry.id < target; });
}

}  // namespace

FChainSlave::VmState* FChainSlave::findVm(ComponentId id) {
  const auto it = lowerBoundVm(vms_, id);
  return it != vms_.end() && it->id == id ? &it->state : nullptr;
}

const FChainSlave::VmState* FChainSlave::findVm(ComponentId id) const {
  const auto it = lowerBoundVm(vms_, id);
  return it != vms_.end() && it->id == id ? &it->state : nullptr;
}

void FChainSlave::addComponent(ComponentId id, TimeSec start_time) {
  const auto it = lowerBoundVm(vms_, id);
  if (it != vms_.end() && it->id == id) return;  // already registered
  vms_.insert(it,
              VmEntry{id, VmState{MetricSeries(start_time),
                                  NormalFluctuationModel(
                                      start_time, selector_.config().predictor),
                                  IngestStats{}}});
}

std::vector<ComponentId> FChainSlave::components() const {
  std::vector<ComponentId> ids;
  ids.reserve(vms_.size());
  for (const VmEntry& entry : vms_) ids.push_back(entry.id);
  return ids;
}

void FChainSlave::ingest(ComponentId id,
                         const std::array<double, kMetricCount>& sample) {
  const VmState* vm = findVm(id);
  if (vm == nullptr) return;
  ingestAt(id, vm->series.endTime(), sample);
}

void FChainSlave::ingestAt(ComponentId id, TimeSec t,
                           const std::array<double, kMetricCount>& sample) {
  VmState* vm_ptr = findVm(id);
  if (vm_ptr == nullptr) return;
  VmState& vm = *vm_ptr;
  const FChainConfig& config = selector_.config();

  const TimeSec start = vm.series.of(MetricKind::CpuUsage).startTime();
  const TimeSec end = vm.series.endTime();

  // Quarantine non-finite values so downstream analysis only ever sees
  // finite numbers. The substitute is the good value already stored *at
  // time t* when this is a duplicate/out-of-order delivery (re-sending a
  // second must never overwrite correct history with a stale tail value),
  // and otherwise the metric's last good value (0 before any sample). The
  // substitution keeps all six per-metric series aligned.
  std::array<double, kMetricCount> clean = sample;
  for (std::size_t m = 0; m < kMetricCount; ++m) {
    if (!std::isfinite(clean[m])) {
      const TimeSeries& series = vm.series.of(kAllMetrics[m]);
      if (t >= start && t < end) {
        clean[m] = series.at(t);
      } else {
        clean[m] = series.empty() ? 0.0 : series.at(series.endTime() - 1);
      }
      ++vm.stats.quarantined;
    }
  }
  if (t < start) {
    ++vm.stats.stale_dropped;
    return;
  }
  if (t < end) {
    // Duplicate / out-of-order delivery: the latest value wins. The model
    // is append-only and has already consumed this second, so it stays
    // untouched.
    for (MetricKind kind : kAllMetrics) {
      vm.series.of(kind).at(t) = clean[metricIndex(kind)];
    }
    ++vm.stats.duplicates;
    return;
  }

  const TimeSec gap = t - end;
  if (gap > config.max_gap_fill_sec) {
    // A timestamp this far in the future is clock corruption, not a gap.
    ++vm.stats.future_dropped;
    return;
  }
  if (gap > 0) {
    // Synthesize the missing seconds and feed them to the model too, so the
    // prediction-error series stays aligned with the metric series.
    std::array<double, kMetricCount> last{};
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      const TimeSeries& series = vm.series.of(kAllMetrics[m]);
      last[m] = series.empty() ? clean[m] : series.at(series.endTime() - 1);
    }
    for (TimeSec g = 1; g <= gap; ++g) {
      std::array<double, kMetricCount> filled{};
      const double frac =
          static_cast<double>(g) / static_cast<double>(gap + 1);
      for (std::size_t m = 0; m < kMetricCount; ++m) {
        filled[m] = config.gap_fill == GapFill::Linear
                        ? last[m] + (clean[m] - last[m]) * frac
                        : last[m];
      }
      vm.series.append(filled);
      vm.model.observe(filled);
    }
    vm.stats.gaps_filled += static_cast<std::size_t>(gap);
  }
  vm.series.append(clean);
  vm.model.observe(clean);
}

const IngestStats* FChainSlave::ingestStatsOf(ComponentId id) const {
  const VmState* vm = findVm(id);
  return vm == nullptr ? nullptr : &vm->stats;
}

const MetricSeries* FChainSlave::seriesOf(ComponentId id) const {
  const VmState* vm = findVm(id);
  return vm == nullptr ? nullptr : &vm->series;
}

std::optional<ComponentFinding> FChainSlave::analyze(
    ComponentId id, TimeSec violation_time) const {
  FCHAIN_SPAN_VAR(span, "slave.analyze_vm");
  span.arg("component", static_cast<std::int64_t>(id));
  const VmState* vm = findVm(id);
  if (vm == nullptr) return std::nullopt;
  return selector_.analyzeComponent(id, vm->series, vm->model,
                                    violation_time);
}

std::vector<std::optional<ComponentFinding>> FChainSlave::analyzeBatch(
    const std::vector<ComponentId>& ids, TimeSec violation_time) const {
  FCHAIN_SPAN_VAR(span, "slave.analyze_batch");
  span.arg("n", static_cast<std::int64_t>(ids.size()));
  std::vector<std::optional<ComponentFinding>> findings(ids.size());
  if (pool_ == nullptr || ids.size() < 2) {
    for (std::size_t i = 0; i < ids.size(); ++i) {
      findings[i] = analyze(ids[i], violation_time);
    }
    return findings;
  }
  // analyze() only reads vms_ and the (stateless) selector, so concurrent
  // per-component calls are safe; each task owns exactly one reply slot.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    tasks.push_back([this, &findings, &ids, i, violation_time] {
      findings[i] = analyze(ids[i], violation_time);
    });
  }
  pool_->run(std::move(tasks));
  return findings;
}

void FChainSlave::setAnalysisThreads(int threads) {
  pool_ = threads > 1 ? std::make_unique<runtime::WorkerPool>(threads)
                      : nullptr;
}

int FChainSlave::analysisThreads() const {
  return pool_ == nullptr ? 1 : pool_->threadCount();
}

}  // namespace fchain::core
