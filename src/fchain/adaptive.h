// Adaptive look-back window selection (the paper's stated ongoing work,
// §III-F: "investigating an adaptive look-back window configuration scheme
// by examining the metric changing speed").
//
// The look-back window must be "long enough to capture the fault
// manifestation": the Hadoop DiskHog needs W = 500 s where everything else
// is happiest at W = 100 s (Table I). Instead of a per-fault constant, the
// adaptive scheme climbs a window ladder and stops as soon as the
// manifestation is *fully contained*:
//
//   - if no component shows any abnormal change although the SLO is being
//     violated, the manifestation predates the window -> widen;
//   - if the earliest abnormal onset sits at the very edge of the window,
//     the manifestation is likely truncated (the change was already in
//     progress when the window opens) -> widen;
//   - otherwise the window brackets the manifestation -> analyze here.
#pragma once

#include "fchain/fchain.h"

namespace fchain::core {

struct AdaptiveWindowConfig {
  /// Window sizes tried in order (seconds).
  std::vector<TimeSec> ladder = {100, 200, 400, 600};
  /// The earliest onset must clear this fraction of the window from its
  /// left edge, or the next rung is tried.
  double edge_fraction = 0.15;
  /// The window data *before* the earliest onset must be a quiet baseline:
  /// if it drifts by more than this many robust sigmas, the manifestation
  /// was already in progress when the window opens ("examining the metric
  /// changing speed") and the next rung is tried.
  double quiet_drift_sigmas = 2.5;
};

struct AdaptiveResult {
  PinpointResult result;
  TimeSec chosen_window = 0;
  std::size_t rungs_tried = 0;
};

/// Runs the FChain pipeline with the adaptive window ladder.
AdaptiveResult localizeRecordAdaptive(
    const sim::RunRecord& record, const netdep::DependencyGraph* dependencies,
    const FChainConfig& config = {}, const AdaptiveWindowConfig& adaptive = {});

}  // namespace fchain::core
