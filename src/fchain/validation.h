// Online pinpointing validation (paper §II-A / §III-D, after PREPARE [20]).
//
// FChain knows which metrics were fault-related on each pinpointed
// component, so it can scale the matching resource (CPU cap, memory
// allocation, disk bandwidth) on that component and watch whether the SLO
// improves. Scaling a true culprit relieves the bottleneck; scaling a false
// alarm changes nothing — those components are dropped. Validation takes
// about 30 s per component because the scaling impact needs time to show
// (Table II), and it improves precision but cannot recover missed
// components (no recall improvement; §III-D).
//
// In this reproduction the "cloud actuator" is the simulator: the validator
// copies the simulation snapshot taken at violation time and runs a scaled
// copy against an unscaled control copy.
#pragma once

#include <vector>

#include "fchain/pinpoint.h"
#include "sim/simulator.h"

namespace fchain::core {

struct ValidationConfig {
  /// Multiplier applied to the fault-related resource.
  double scale_factor = 2.5;
  /// How long each what-if run is observed (paper: ~30 s per component).
  std::size_t observe_sec = 30;
  /// The SLO signal of the scaled run must drop below this fraction of the
  /// control run's to count as an improvement. The scaled and control runs
  /// replay identical noise streams, so even a *partial* relief (scaling one
  /// of two concurrent culprits) separates cleanly from a false alarm
  /// (ratio ~= 1.0).
  double improvement_ratio = 0.85;
};

class OnlineValidator {
 public:
  explicit OnlineValidator(ValidationConfig config = {})
      : config_(config) {}

  /// Returns the subset of `result.pinpointed` whose resource scaling
  /// measurably improves the SLO. `snapshot` is the simulation state at
  /// violation time; it is copied, never mutated.
  ///
  /// Concurrent faults are handled with group validation: first scale every
  /// pinpointed component together (the SLO must recover — otherwise the
  /// validation is inconclusive and the set is returned unchanged), then
  /// attribute by leave-one-out: a component whose scaling can be removed
  /// without hurting the recovered SLO was a false alarm. A single
  /// pinpointed component degenerates to the paper's per-component check.
  std::vector<ComponentId> validate(const sim::Simulation& snapshot,
                                    const PinpointResult& result) const;

  /// Validates a single component; exposed for tests and the overhead bench.
  bool validateComponent(const sim::Simulation& snapshot,
                         const ComponentFinding& finding) const;

 private:
  ValidationConfig config_;
};

}  // namespace fchain::core
