#include "fchain/slave_service.h"

#include <poll.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "persist/codec.h"
#include "runtime/wire.h"

namespace fchain::core {
namespace {

namespace wire = runtime::wire;

obs::MetricRegistry& registryOf(const SlaveServiceConfig& config) {
  return config.registry != nullptr ? *config.registry : obs::metrics();
}

}  // namespace

SlaveService::SlaveService(FChainSlave& slave, SlaveServiceConfig config,
                           SlaveCheckpointer* checkpointer)
    : slave_(slave),
      config_(std::move(config)),
      checkpointer_(checkpointer),
      listener_(runtime::Listener::listenOn(config_.listen)),
      metric_connects_(registryOf(config_).counter("runtime.socket.connects")),
      metric_frames_tx_(
          registryOf(config_).counter("runtime.socket.frames_tx")),
      metric_frames_rx_(
          registryOf(config_).counter("runtime.socket.frames_rx")),
      metric_crc_errors_(
          registryOf(config_).counter("runtime.socket.crc_errors")),
      metric_torn_frames_(
          registryOf(config_).counter("runtime.socket.torn_frames")) {}

SlaveService::~SlaveService() { stop(); }

std::uint64_t SlaveService::identityHash() const {
  return wire::slaveIdentityHash(slave_.host(), slave_.components());
}

void SlaveService::start() {
  stop_.store(false);
  thread_ = std::thread([this] { run(); });
}

void SlaveService::stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
}

void SlaveService::run() {
  while (!stop_.load()) {
    struct pollfd fds[2];
    nfds_t nfds = 0;
    fds[nfds++] = {listener_.fd(), POLLIN, 0};
    if (conn_.valid()) fds[nfds++] = {conn_.fd(), POLLIN, 0};
    // A short tick keeps stop() responsive without a self-pipe.
    const int rc = ::poll(fds, nfds, 200);
    if (rc <= 0) continue;
    if (fds[0].revents & POLLIN) {
      runtime::Socket accepted = listener_.accept(/*timeout_ms=*/100.0);
      if (accepted.valid()) {
        // Newest connection wins: the master reconnecting after a failure
        // supersedes whatever half-dead socket we still hold.
        conn_ = std::move(accepted);
        metric_connects_.add();
      }
    }
    if (nfds > 1 && (fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      serveConnection();
    }
  }
}

void SlaveService::serveConnection() {
  std::vector<std::uint8_t> frame;
  const runtime::RecvStatus status =
      conn_.recvFrame(frame, config_.io_timeout_ms);
  switch (status) {
    case runtime::RecvStatus::Ok:
      metric_frames_rx_.add();
      if (!handleFrame(frame)) conn_.close();
      return;
    case runtime::RecvStatus::Closed:
      conn_.close();
      return;
    case runtime::RecvStatus::Torn:
      metric_torn_frames_.add();
      conn_.close();
      return;
    case runtime::RecvStatus::Timeout:
      // poll() said readable but a whole frame never arrived: a wedged
      // peer. Drop it; a live master reconnects.
      conn_.close();
      return;
    case runtime::RecvStatus::Corrupt:
      metric_crc_errors_.add();
      reply(wire::encodeError(
          {wire::ErrorCode::BadRequest, "unparseable frame header"}));
      conn_.close();
      return;
    case runtime::RecvStatus::BadVersion:
      reply(wire::encodeError({wire::ErrorCode::VersionMismatch,
                               "server speaks wire protocol version " +
                                   std::to_string(wire::kWireVersion)}));
      conn_.close();
      return;
  }
}

bool SlaveService::reply(const std::vector<std::uint8_t>& frame) {
  if (!conn_.sendAll(frame, config_.io_timeout_ms)) return false;
  metric_frames_tx_.add();
  return true;
}

bool SlaveService::handleFrame(const std::vector<std::uint8_t>& frame) {
  wire::Message message;
  try {
    message = wire::decodeMessage(frame);
  } catch (const persist::CorruptDataError& error) {
    metric_crc_errors_.add();
    reply(wire::encodeError({wire::ErrorCode::BadRequest, error.what()}));
    return false;
  }

  if (const auto* hello = std::get_if<wire::Hello>(&message)) {
    if (hello->protocol_version != wire::kWireVersion) {
      reply(wire::encodeError({wire::ErrorCode::VersionMismatch,
                               "server speaks wire protocol version " +
                                   std::to_string(wire::kWireVersion)}));
      return false;
    }
    wire::HelloReply out;
    out.host = slave_.host();
    out.identity_hash = identityHash();
    out.components = slave_.components();
    return reply(wire::encodeHelloReply(out));
  }
  if (const auto* request = std::get_if<runtime::AnalyzeBatchRequest>(
          &message)) {
    if (config_.analyze_delay_ms > 0.0) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<std::int64_t>(config_.analyze_delay_ms * 1e3)));
    }
    runtime::AnalyzeBatchReply out;
    out.status = runtime::EndpointStatus::Ok;
    out.findings =
        slave_.analyzeBatch(request->components, request->violation_time);
    return reply(wire::encodeAnalyzeBatchReply(out));
  }
  if (const auto* request = std::get_if<runtime::IngestRequest>(&message)) {
    if (checkpointer_ != nullptr) {
      checkpointer_->ingestAt(request->component, request->t,
                              request->sample);
    } else {
      slave_.ingestAt(request->component, request->t, request->sample);
    }
    runtime::IngestReply out;
    out.status = runtime::EndpointStatus::Ok;
    return reply(wire::encodeIngestReply(out));
  }
  if (std::holds_alternative<wire::ListComponentsRequest>(message)) {
    return reply(wire::encodeListComponentsReply(
        {runtime::EndpointStatus::Ok, slave_.components()}));
  }
  if (std::holds_alternative<wire::Shutdown>(message)) {
    stop_.store(true);
    return false;
  }
  // Server-bound traffic only: HelloReply / *Reply / Error frames arriving
  // here mean the peer lost the plot.
  reply(wire::encodeError(
      {wire::ErrorCode::BadRequest, "unexpected client message"}));
  return false;
}

std::uint64_t connectSlave(FChainMaster& master,
                           runtime::SlaveRegistry& registry,
                           std::shared_ptr<runtime::SocketEndpoint> endpoint) {
  const runtime::ComponentListReply discovered = endpoint->listComponents();
  if (discovered.status != runtime::EndpointStatus::Ok) {
    throw std::runtime_error("slave at " + endpoint->address().str() +
                             " unreachable: " +
                             std::string(runtime::endpointStatusName(
                                 discovered.status)));
  }
  const HostId slave_id = endpoint->host();
  const std::uint64_t identity = endpoint->identity();
  switch (registry.claim(slave_id, identity)) {
    case runtime::SlaveRegistry::Claim::Registered:
    case runtime::SlaveRegistry::Claim::Reregistered:
      break;
    case runtime::SlaveRegistry::Claim::Rejected:
      throw std::invalid_argument(
          "split-brain: slave id " + std::to_string(slave_id) + " at " +
          endpoint->address().str() +
          " presents a different identity hash than the registered claim");
  }
  master.registerEndpoint(endpoint, discovered.components);
  return identity;
}

}  // namespace fchain::core
