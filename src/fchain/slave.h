// FChain slave (paper Fig. 1): runs in Domain 0 of one cloud node, samples
// the six system metrics of every local guest VM each second, and keeps the
// per-metric normal fluctuation models up to date. When the master asks, it
// runs the abnormal change point selector over its local components'
// look-back windows and returns the findings — the compute-heavy selection
// work thereby stays distributed across hosts (paper §III-G).
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "fchain/change_selector.h"

namespace fchain::core {

class FChainSlave {
 public:
  explicit FChainSlave(HostId host, FChainConfig config = {})
      : host_(host), selector_(std::move(config)) {}

  HostId host() const { return host_; }

  /// Registers a guest VM hosted on this node. `start_time` is the first
  /// sample's timestamp.
  void addComponent(ComponentId id, TimeSec start_time);

  bool monitors(ComponentId id) const { return vms_.contains(id); }
  std::vector<ComponentId> components() const;

  /// Feeds one second of samples for one local VM.
  void ingest(ComponentId id, const std::array<double, kMetricCount>& sample);

  /// Master RPC: analyze one local component's look-back window.
  std::optional<ComponentFinding> analyze(ComponentId id,
                                          TimeSec violation_time) const;

 private:
  struct VmState {
    MetricSeries series;
    NormalFluctuationModel model;
  };

  HostId host_;
  AbnormalChangeSelector selector_;
  std::map<ComponentId, VmState> vms_;
};

}  // namespace fchain::core
