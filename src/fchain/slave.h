// FChain slave (paper Fig. 1): runs in Domain 0 of one cloud node, samples
// the six system metrics of every local guest VM each second, and keeps the
// per-metric normal fluctuation models up to date. When the master asks, it
// runs the abnormal change point selector over its local components'
// look-back windows and returns the findings — the compute-heavy selection
// work thereby stays distributed across hosts (paper §III-G).
//
// Ingestion is hardened against unreliable monitoring streams: missing
// seconds are gap-filled (FChainConfig::gap_fill), duplicate and
// out-of-order timestamps are tolerated, and non-finite samples are
// quarantined before they can reach the Markov model or CUSUM. Per-VM
// IngestStats count every such repair.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <vector>

#include "fchain/change_selector.h"
#include "persist/snapshot.h"
#include "runtime/worker_pool.h"

namespace fchain::core {

/// Per-VM telemetry repair counters.
struct IngestStats {
  std::size_t gaps_filled = 0;     ///< synthesized samples (missing seconds)
  std::size_t quarantined = 0;     ///< non-finite metric values replaced
  std::size_t duplicates = 0;      ///< duplicate/out-of-order timestamps
  std::size_t stale_dropped = 0;   ///< samples older than the series start
  std::size_t future_dropped = 0;  ///< timestamps past max_gap_fill_sec
};

class FChainSlave {
 public:
  explicit FChainSlave(HostId host, FChainConfig config = {})
      : host_(host), selector_(std::move(config)) {}
  ~FChainSlave();
  FChainSlave(FChainSlave&&) noexcept;
  FChainSlave& operator=(FChainSlave&&) noexcept;

  HostId host() const { return host_; }

  /// Registers a guest VM hosted on this node. `start_time` is the first
  /// sample's timestamp. Register every component before handing the slave
  /// to FChainMaster: the master snapshots the component list then.
  void addComponent(ComponentId id, TimeSec start_time);

  bool monitors(ComponentId id) const { return findVm(id) != nullptr; }
  std::vector<ComponentId> components() const;

  /// Feeds one second of samples for one local VM at the series' endTime().
  void ingest(ComponentId id, const std::array<double, kMetricCount>& sample);

  /// Timestamped ingest for unreliable streams: tolerates gaps (filled per
  /// FChainConfig::gap_fill and counted), duplicate/out-of-order timestamps
  /// (latest value wins, the model is untouched), stale samples (dropped),
  /// wild future timestamps (dropped) and non-finite values (quarantined —
  /// the metric's last good value is substituted so neither the Markov
  /// model nor CUSUM ever sees a NaN/inf).
  void ingestAt(ComponentId id, TimeSec t,
                const std::array<double, kMetricCount>& sample);

  /// Telemetry repair counters for one VM; nullptr when unknown.
  const IngestStats* ingestStatsOf(ComponentId id) const;

  /// Read-only view of one VM's repaired metric ring; nullptr when unknown.
  const MetricSeries* seriesOf(ComponentId id) const;

  /// Master RPC: analyze one local component's look-back window.
  std::optional<ComponentFinding> analyze(ComponentId id,
                                          TimeSec violation_time) const;

  /// Batched master RPC: analyze every listed component against the same
  /// violation time. Returns one slot per requested id, aligned with `ids`
  /// (nullopt = unknown component or no abnormal change). When analysis
  /// threads are enabled the per-VM selector runs fan out across the
  /// slave's worker pool; each component writes only its own pre-allocated
  /// slot, so the reply is bit-identical to serial analysis regardless of
  /// scheduling.
  std::vector<std::optional<ComponentFinding>> analyzeBatch(
      const std::vector<ComponentId>& ids, TimeSec violation_time) const;

  /// Enables (threads > 1) or disables (<= 1) parallel per-VM analysis for
  /// analyzeBatch. Deployment-time configuration: size to the host cores
  /// Domain 0 may burn on diagnosis.
  void setAnalysisThreads(int threads);
  int analysisThreads() const;

  /// Captures the slave's complete learned state — every VM's repaired
  /// metric series, the six per-metric predictors (discretizer calibration,
  /// Markov transition mass, error history, prediction carry-over) and the
  /// ingest-repair counters — as a persistable value. `epoch` tags the
  /// checkpoint generation (see SlaveCheckpointer).
  persist::SlaveSnapshot snapshot(std::uint64_t epoch = 0) const;

  /// Rebuilds a slave from a snapshot. The restored slave's analyze() /
  /// analyzeBatch() results are bit-identical to the slave that produced the
  /// snapshot, and further ingest continues the models deterministically.
  /// `config` supplies the non-persisted analysis parameters (thresholds,
  /// gap-fill mode) and must match the original slave's config for
  /// equivalence to hold.
  static FChainSlave fromSnapshot(const persist::SlaveSnapshot& snapshot,
                                  FChainConfig config = {});

 private:
  struct VmState {
    MetricSeries series;
    NormalFluctuationModel model;
    IngestStats stats;
  };

  /// One monitored VM. The fleet lives in a flat vector sorted by id rather
  /// than a node-per-VM map: the per-second ingest path and the analyze
  /// fan-out walk VMs constantly, and a contiguous id-sorted array gives
  /// them a binary-search lookup over one cache-resident id sequence and a
  /// linear scan for iteration. Id order is also the snapshot order, so
  /// serialized state stays byte-identical to the old map layout. (The six
  /// metric streams inside MetricSeries are already
  /// structure-of-arrays: one dense TimeSeries per metric.)
  struct VmEntry {
    ComponentId id;
    VmState state;
  };

  VmState* findVm(ComponentId id);
  const VmState* findVm(ComponentId id) const;

  HostId host_;
  AbnormalChangeSelector selector_;
  std::vector<VmEntry> vms_;                   ///< sorted by id
  std::unique_ptr<runtime::WorkerPool> pool_;  ///< null = serial analysis
};

}  // namespace fchain::core
