#include "fchain/incident.h"

#include <sstream>

namespace fchain::core {

IncidentReport diagnoseIncident(const sim::RunRecord& record,
                                const sim::Simulation* snapshot,
                                const DiagnosisOptions& options) {
  IncidentReport report;
  if (!record.violation_time.has_value()) return report;
  report.diagnosed = true;
  report.violation_time = *record.violation_time;

  netdep::DependencyGraph dependencies;
  if (options.discover_dependencies) {
    dependencies = netdep::discoverDependencies(record);
  }
  report.dependency_edges = dependencies.edgeCount();
  report.dependency_available = !dependencies.empty();

  if (options.adaptive_window) {
    auto adaptive = localizeRecordAdaptive(record, &dependencies,
                                           options.config, options.adaptive);
    report.result = std::move(adaptive.result);
    report.lookback_window = adaptive.chosen_window;
  } else {
    report.result =
        localizeRecord(record, &dependencies, options.config);
    report.lookback_window = options.config.lookback_sec;
  }

  if (snapshot != nullptr && !report.result.external_factor &&
      !report.result.pinpointed.empty()) {
    OnlineValidator validator;
    report.validated = validator.validate(*snapshot, report.result);
  }
  return report;
}

std::string formatIncidentReport(const IncidentReport& report,
                                 const sim::RunRecord& record) {
  std::ostringstream out;
  if (!report.diagnosed) {
    out << "no SLO violation in the record; nothing to diagnose\n";
    return out.str();
  }
  auto name = [&](ComponentId id) -> const std::string& {
    return record.app_spec.components[id].name;
  };

  out << "SLO violation at t=" << report.violation_time
      << "  (look-back window " << report.lookback_window << " s, "
      << (report.dependency_available
              ? std::to_string(report.dependency_edges) +
                    " dependency edges discovered"
              : std::string("no dependency information — chronology only"))
      << ")\n";

  if (report.result.external_factor) {
    out << "verdict: EXTERNAL FACTOR ("
        << trendName(report.result.external_trend) << " trend) — "
        << (report.result.external_trend == Trend::Up
                ? "likely a workload increase; no component is at fault"
                : "likely a shared-service degradation; no component is at "
                  "fault")
        << "\n";
    return out.str();
  }

  out << "abnormal change propagation chain:\n";
  for (const auto& finding : report.result.chain) {
    out << "  t=" << finding.onset << "  " << name(finding.component)
        << "  (" << trendName(finding.trend) << ";";
    for (const auto& metric : finding.metrics) {
      out << " " << metricName(metric.metric);
    }
    out << ")\n";
  }

  out << "pinpointed faulty component(s):";
  if (report.result.pinpointed.empty()) {
    out << " none";
  }
  for (ComponentId id : report.result.pinpointed) {
    out << " " << name(id);
  }
  out << "\n";

  if (report.validated.has_value()) {
    out << "after online validation:";
    if (report.validated->empty()) out << " none confirmed";
    for (ComponentId id : *report.validated) {
      out << " " << name(id);
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace fchain::core
