// FChain master (paper Fig. 1): runs on a dedicated server. When the SLO
// monitor reports a performance anomaly at time tv, the master fans the
// analysis request out to the slaves hosting the failing application's VMs,
// collects their abnormal-change findings, runs integrated pinpointing
// against the (offline-discovered) dependency graph, and optionally runs the
// online validation pass to shed false alarms.
//
// Slaves are reached through the runtime::SlaveEndpoint seam, so the master
// survives an unreliable monitoring plane: every analysis request carries a
// deadline and is retried with exponential backoff + deterministic jitter
// (runtime::RetryPolicy), each endpoint's health is tracked across requests
// (healthy -> degraded -> down; down endpoints get a single probe instead of
// the full retry budget), and localization proceeds from whatever findings
// arrive — PinpointResult::coverage reports how much of the application was
// actually analyzed instead of silently pretending full coverage.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "fchain/pinpoint.h"
#include "fchain/slave.h"
#include "fchain/validation.h"
#include "runtime/endpoint.h"
#include "runtime/health.h"

namespace fchain::core {

/// Transport bookkeeping accumulated across localize() calls.
struct MasterRuntimeStats {
  std::size_t requests = 0;   ///< analysis attempts issued (incl. retries)
  std::size_t retries = 0;    ///< attempts beyond the first per component
  std::size_t failures = 0;   ///< components whose retry budget ran out
  double simulated_backoff_ms = 0.0;  ///< total backoff the schedule imposed
};

class FChainMaster {
 public:
  explicit FChainMaster(FChainConfig config = {},
                        runtime::RetryPolicy retry = {})
      : config_(config), retry_(retry), pinpointer_(config) {}

  /// Registers an in-process slave (wrapped in a runtime::LocalEndpoint);
  /// the data stays on the slave's host and the slave must outlive the
  /// master. Register the slave's components first: the routing table is
  /// built here. Throws std::invalid_argument when the same slave is
  /// registered twice or a component is already claimed by another slave.
  void registerSlave(FChainSlave* slave);

  /// Registers a slave behind an arbitrary transport. The component list is
  /// discovered via listComponents(), retried per the retry policy; throws
  /// std::runtime_error when discovery keeps failing and
  /// std::invalid_argument on duplicate endpoints / component claims.
  void registerEndpoint(std::shared_ptr<runtime::SlaveEndpoint> endpoint);

  /// Same, with the component routing known up front (deployment manifest);
  /// skips the discovery RPC entirely.
  void registerEndpoint(std::shared_ptr<runtime::SlaveEndpoint> endpoint,
                        const std::vector<ComponentId>& components);

  /// Supplies the offline-discovered dependency graph (may be empty — e.g.
  /// for stream processing systems, where discovery finds nothing).
  void setDependencies(netdep::DependencyGraph graph) {
    dependencies_ = std::move(graph);
  }

  const runtime::RetryPolicy& retryPolicy() const { return retry_; }
  void setRetryPolicy(runtime::RetryPolicy retry) { retry_ = retry; }

  /// Health of every registered endpoint, in registration order.
  std::vector<runtime::HealthState> endpointHealth() const;

  const MasterRuntimeStats& runtimeStats() const { return stats_; }

  /// Localizes the fault for the application made of `components`. Degraded
  /// mode: components whose slave never answers are reported in
  /// PinpointResult::unanalyzed and the result's coverage drops below 1.
  PinpointResult localize(const std::vector<ComponentId>& components,
                          TimeSec violation_time) const;

  /// Localize + online validation against a simulation snapshot.
  PinpointResult localizeAndValidate(
      const std::vector<ComponentId>& components, TimeSec violation_time,
      const sim::Simulation& snapshot,
      const ValidationConfig& validation = {}) const;

 private:
  struct Endpoint {
    std::shared_ptr<runtime::SlaveEndpoint> endpoint;
    runtime::EndpointHealth health;
  };

  /// Adds the endpoint under the given component routes (shared tail of
  /// both register paths).
  void addEndpoint(std::shared_ptr<runtime::SlaveEndpoint> endpoint,
                   const std::vector<ComponentId>& components);

  FChainConfig config_;
  runtime::RetryPolicy retry_;
  IntegratedPinpointer pinpointer_;
  // Health evolves as the (logically const) localization observes slave
  // behaviour, like a connection pool's internal bookkeeping.
  mutable std::vector<Endpoint> endpoints_;
  mutable MasterRuntimeStats stats_;
  std::map<ComponentId, std::size_t> routes_;  ///< component -> endpoint idx
  std::set<const void*> registered_;  ///< raw identity of slaves/endpoints
  netdep::DependencyGraph dependencies_;
};

}  // namespace fchain::core
