// FChain master (paper Fig. 1): runs on a dedicated server. When the SLO
// monitor reports a performance anomaly at time tv, the master fans the
// analysis request out to the slaves hosting the failing application's VMs,
// collects their abnormal-change findings, runs integrated pinpointing
// against the (offline-discovered) dependency graph, and optionally runs the
// online validation pass to shed false alarms.
#pragma once

#include <functional>
#include <vector>

#include "fchain/pinpoint.h"
#include "fchain/slave.h"
#include "fchain/validation.h"

namespace fchain::core {

class FChainMaster {
 public:
  explicit FChainMaster(FChainConfig config = {})
      : config_(config), pinpointer_(config) {}

  /// Registers a slave; the master only keeps a handle, the data stays on
  /// the slave's host. The slave must outlive the master.
  void registerSlave(FChainSlave* slave) { slaves_.push_back(slave); }

  /// Supplies the offline-discovered dependency graph (may be empty — e.g.
  /// for stream processing systems, where discovery finds nothing).
  void setDependencies(netdep::DependencyGraph graph) {
    dependencies_ = std::move(graph);
  }

  /// Localizes the fault for the application made of `components`.
  PinpointResult localize(const std::vector<ComponentId>& components,
                          TimeSec violation_time) const;

  /// Localize + online validation against a simulation snapshot.
  PinpointResult localizeAndValidate(
      const std::vector<ComponentId>& components, TimeSec violation_time,
      const sim::Simulation& snapshot,
      const ValidationConfig& validation = {}) const;

 private:
  FChainConfig config_;
  IntegratedPinpointer pinpointer_;
  std::vector<FChainSlave*> slaves_;
  netdep::DependencyGraph dependencies_;
};

}  // namespace fchain::core
