// FChain master (paper Fig. 1): runs on a dedicated server. When the SLO
// monitor reports a performance anomaly at time tv, the master fans the
// analysis request out to the slaves hosting the failing application's VMs,
// collects their abnormal-change findings, runs integrated pinpointing
// against the (offline-discovered) dependency graph, and optionally runs the
// online validation pass to shed false alarms.
//
// Slaves are reached through the runtime::SlaveEndpoint seam, so the master
// survives an unreliable monitoring plane: every analysis request carries a
// deadline and is retried with exponential backoff + deterministic jitter
// (runtime::RetryPolicy), each endpoint's health is tracked across requests
// (healthy -> degraded -> down; down endpoints get a single probe instead of
// the full retry budget), and localization proceeds from whatever findings
// arrive — PinpointResult::coverage reports how much of the application was
// actually analyzed instead of silently pretending full coverage.
//
// Localization runs either serially (worker threads = 0, the reference
// path: one analyze request per component, walked in caller order) or as a
// parallel fan-out (worker threads >= 1): components are grouped by their
// slave, each slave gets ONE batched request covering all its components
// (runtime::AnalyzeBatchRequest), and the per-slave batch jobs run
// concurrently on a fixed-size runtime::WorkerPool. A per-endpoint mutex
// serializes requests to any one endpoint (FlakyEndpoint's request counter
// and health accounting stay exact), results merge deterministically in
// caller component order, and the backoff schedule keeps its per-component
// seeding — so for transports whose failures do not depend on the request
// arrival index (outages, blackouts, healthy links) the PinpointResult is
// bit-identical across serial and any thread count.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "fchain/pinpoint.h"
#include "fchain/slave.h"
#include "fchain/validation.h"
#include "obs/metrics.h"
#include "persist/journal.h"
#include "runtime/breaker.h"
#include "runtime/endpoint.h"
#include "runtime/health.h"
#include "runtime/watchdog.h"

namespace fchain::runtime {
class WorkerPool;
}  // namespace fchain::runtime

namespace fchain::core {

/// Transport bookkeeping accumulated across localize() calls. A request is
/// one transport round-trip: the serial path issues one per component
/// attempt, the parallel path one per slave *batch* attempt.
///
/// This struct is now a *view*: the authoritative values live in the
/// master's obs::MetricRegistry (counters "master.requests" / ".retries" /
/// ".failures" and gauge "master.backoff_ms"); runtimeStats() adapts the
/// registry back into this shape for existing callers.
struct MasterRuntimeStats {
  std::size_t requests = 0;   ///< analysis attempts issued (incl. retries)
  std::size_t retries = 0;    ///< attempts beyond the first per request
  std::size_t failures = 0;   ///< components whose retry budget ran out
  double simulated_backoff_ms = 0.0;  ///< total backoff the schedule imposed
  // Watchdog bookkeeping (all zero unless setWatchdog() enabled it).
  std::size_t watchdog_trips = 0;   ///< endpoint calls abandoned on timeout
  std::size_t breaker_opens = 0;    ///< circuit breakers opened by trips
  std::size_t deadline_skips = 0;   ///< components shed by the deadline
};

class FChainMaster {
 public:
  explicit FChainMaster(FChainConfig config = {},
                        runtime::RetryPolicy retry = {})
      : config_(config), retry_(retry), pinpointer_(config) {}
  ~FChainMaster();

  /// Registers an in-process slave (wrapped in a runtime::LocalEndpoint);
  /// the data stays on the slave's host and the slave must outlive the
  /// master. Register the slave's components first: the routing table is
  /// built here. Throws std::invalid_argument when the same slave is
  /// registered twice or a component is already claimed by another slave.
  void registerSlave(FChainSlave* slave);

  /// Registers a slave behind an arbitrary transport. The component list is
  /// discovered via listComponents(), retried per the retry policy — with
  /// the same backoff schedule, health accounting, and stats counting as
  /// the localization path, so discovery storms against a flaky slave are
  /// visible, paced, and carried into the endpoint's initial health.
  /// Throws std::runtime_error when discovery keeps failing and
  /// std::invalid_argument on duplicate endpoints / component claims.
  void registerEndpoint(std::shared_ptr<runtime::SlaveEndpoint> endpoint);

  /// Same, with the component routing known up front (deployment manifest);
  /// skips the discovery RPC entirely.
  void registerEndpoint(std::shared_ptr<runtime::SlaveEndpoint> endpoint,
                        const std::vector<ComponentId>& components);

  /// Supplies the offline-discovered dependency graph (may be empty — e.g.
  /// for stream processing systems, where discovery finds nothing).
  void setDependencies(netdep::DependencyGraph graph) {
    dependencies_ = std::move(graph);
  }

  const runtime::RetryPolicy& retryPolicy() const { return retry_; }
  void setRetryPolicy(runtime::RetryPolicy retry) { retry_ = retry; }

  /// Enables wall-time bounding of localization (see runtime/watchdog.h):
  /// per-call watchdog, whole-localize deadline, and per-endpoint circuit
  /// breakers that shed repeatedly hanging endpoints into degraded-mode
  /// coverage. Off by default — with the zero config, localization behaviour
  /// is bit-identical to a master without a watchdog. Resets every
  /// endpoint's breaker to the new thresholds.
  void setWatchdog(runtime::WatchdogConfig config);
  const runtime::WatchdogConfig& watchdog() const { return watchdog_; }

  /// Attaches the master's incident journal (nullptr detaches; not owned,
  /// must outlive the master). Every localize() records its input to the
  /// journal before fan-out and marks it done afterwards, so a master crash
  /// mid-localization leaves a pending entry that rerunPendingIncidents()
  /// (fchain/recovery.h) can re-run after restart.
  void setIncidentJournal(persist::IncidentJournal* journal) {
    incident_journal_ = journal;
  }

  /// Sizes the localization fan-out pool. 0 (the default) selects the
  /// serial reference path; n >= 1 runs per-slave batch jobs on n pool
  /// threads (1 thread still exercises the batched protocol). The pool is
  /// created lazily on the next localize() and rebuilt on resize.
  void setWorkerThreads(int threads);
  int workerThreads() const { return worker_threads_; }

  /// Health of every registered endpoint, in registration order.
  std::vector<runtime::HealthState> endpointHealth() const;

  /// Thin adapter over the metric registry: reads the transport counters
  /// back into the legacy struct. Values are identical to the registry
  /// snapshot's, by construction.
  MasterRuntimeStats runtimeStats() const;

  /// This master's metric registry. Registry metric names:
  ///   master.requests / master.retries / master.failures   (counters)
  ///   master.retries_total   (counter: alias of master.retries under the
  ///                           fleet-dashboard naming convention)
  ///   master.watchdog_trips  (counter: endpoint calls abandoned on timeout)
  ///   master.breaker_opens   (counter: circuit breakers opened)
  ///   master.deadline_skips  (counter: components shed by the deadline)
  ///   master.endpoint_state.healthy / .degraded / .down
  ///                          (counters: health-state *transitions* into
  ///                           each state, across all endpoints)
  ///   master.backoff_ms      (gauge: accumulated simulated backoff)
  ///   master.pool_pending    (gauge: worker-pool queue depth after the
  ///                           fan-out drains — 0 unless something leaked)
  ///   master.localize_ms     (histogram: end-to-end localize wall-clock)
  obs::MetricRegistry& metrics() { return registry_; }
  const obs::MetricRegistry& metrics() const { return registry_; }

  /// Localizes the fault for the application made of `components`. Degraded
  /// mode: components whose slave never answers are reported in
  /// PinpointResult::unanalyzed and the result's coverage drops below 1.
  /// Mutates transport bookkeeping (endpoint health, runtime stats) — the
  /// seed's `const localize` quietly did the same through mutable members.
  /// Safe to call from multiple threads concurrently: per-endpoint mutexes
  /// serialize transport access and stats land in lock-free registry
  /// atomics. When the global obs tracer is enabled, the call emits
  /// master / worker-pool / slave / signal-kernel spans.
  PinpointResult localize(const std::vector<ComponentId>& components,
                          TimeSec violation_time);

  /// Localize + online validation against a simulation snapshot.
  PinpointResult localizeAndValidate(
      const std::vector<ComponentId>& components, TimeSec violation_time,
      const sim::Simulation& snapshot,
      const ValidationConfig& validation = {});

 private:
  struct Endpoint {
    std::shared_ptr<runtime::SlaveEndpoint> endpoint;
    runtime::EndpointHealth health;
    /// Serializes requests to this endpoint across pool workers and across
    /// concurrent localize() calls. shared_ptr (not unique_ptr) on purpose:
    /// a watchdog sacrificial thread locks it *inside* the thread and may
    /// outlive any given localize() call — capturing the shared_ptr by
    /// value keeps the mutex alive for the abandoned call.
    std::shared_ptr<std::mutex> lock;
    /// Opens after repeated watchdog trips; see runtime/breaker.h.
    runtime::CircuitBreaker breaker;
  };

  /// Wall-clock cutoff for one localize() (nullopt = no deadline).
  using Deadline = std::optional<std::chrono::steady_clock::time_point>;

  /// One per-slave unit of the parallel fan-out.
  struct BatchJob {
    std::size_t endpoint_index = 0;
    std::vector<ComponentId> ids;  ///< caller order, this slave's subset
    std::vector<std::optional<ComponentFinding>> findings;  ///< aligned
    bool answered = false;
    MasterRuntimeStats stats;  ///< merged by the coordinator afterwards
  };

  /// Adds the endpoint under the given component routes (shared tail of
  /// both register paths); `health` carries any discovery-time history.
  void addEndpoint(std::shared_ptr<runtime::SlaveEndpoint> endpoint,
                   const std::vector<ComponentId>& components,
                   runtime::EndpointHealth health);

  PinpointResult localizeSerial(const std::vector<ComponentId>& components,
                                TimeSec violation_time, Deadline deadline);
  PinpointResult localizeParallel(const std::vector<ComponentId>& components,
                                  TimeSec violation_time, Deadline deadline);
  /// Issues one batch (with retries) to the job's endpoint; runs on a pool
  /// worker. Without the watchdog it holds the endpoint's mutex for the
  /// whole retry sequence; with it, each attempt locks inside the
  /// sacrificial thread.
  void runBatchJob(BatchJob& job, TimeSec violation_time, Deadline deadline);
  void mergeStats(const MasterRuntimeStats& delta);
  /// Records a request outcome on the endpoint's health and bumps the
  /// endpoint_state transition counter when the state changed.
  void recordOutcome(Endpoint& ep, bool ok);

  FChainConfig config_;
  runtime::RetryPolicy retry_;
  IntegratedPinpointer pinpointer_;
  std::vector<Endpoint> endpoints_;
  /// Registry-backed runtime metrics. The instrument references are
  /// registered once here (registry_ must be declared first); hot-path
  /// updates are lock-free atomics, so no stats mutex is needed anymore.
  obs::MetricRegistry registry_;
  obs::Counter& metric_requests_ = registry_.counter("master.requests");
  obs::Counter& metric_retries_ = registry_.counter("master.retries");
  obs::Counter& metric_retries_total_ =
      registry_.counter("master.retries_total");
  obs::Counter& metric_failures_ = registry_.counter("master.failures");
  obs::Counter& metric_watchdog_trips_ =
      registry_.counter("master.watchdog_trips");
  obs::Counter& metric_breaker_opens_ =
      registry_.counter("master.breaker_opens");
  obs::Counter& metric_deadline_skips_ =
      registry_.counter("master.deadline_skips");
  obs::Counter& metric_state_healthy_ =
      registry_.counter("master.endpoint_state.healthy");
  obs::Counter& metric_state_degraded_ =
      registry_.counter("master.endpoint_state.degraded");
  obs::Counter& metric_state_down_ =
      registry_.counter("master.endpoint_state.down");
  obs::Gauge& metric_backoff_ms_ = registry_.gauge("master.backoff_ms");
  obs::Gauge& metric_pool_pending_ = registry_.gauge("master.pool_pending");
  obs::Histogram& metric_localize_ms_ = registry_.histogram(
      "master.localize_ms",
      {1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
       2000.0, 5000.0, 10000.0});
  std::map<ComponentId, std::size_t> routes_;  ///< component -> endpoint idx
  std::set<const void*> registered_;  ///< raw identity of slaves/endpoints
  netdep::DependencyGraph dependencies_;
  int worker_threads_ = 0;  ///< 0 = serial reference path
  std::unique_ptr<runtime::WorkerPool> pool_;
  runtime::WatchdogConfig watchdog_;  ///< zeros = watchdog off
  persist::IncidentJournal* incident_journal_ = nullptr;  ///< not owned
};

}  // namespace fchain::core
