#include "fchain/fchain.h"

namespace fchain::core {

PinpointResult localizeRecord(const sim::RunRecord& record,
                              const netdep::DependencyGraph* dependencies,
                              const FChainConfig& config) {
  PinpointResult result;
  if (!record.violation_time.has_value()) return result;
  const TimeSec tv = *record.violation_time;

  AbnormalChangeSelector selector(config);
  std::vector<ComponentFinding> findings;
  for (ComponentId id = 0; id < record.metrics.size(); ++id) {
    // Reconstruct the slave's continuously learned model as of tv.
    const auto model =
        replayModel(record.metrics[id], tv + 1, config.predictor);
    if (auto finding =
            selector.analyzeComponent(id, record.metrics[id], model, tv)) {
      findings.push_back(std::move(*finding));
    }
  }

  IntegratedPinpointer pinpointer(config);
  return pinpointer.pinpoint(std::move(findings), record.metrics.size(),
                             dependencies);
}

}  // namespace fchain::core
