#include "fchain/recovery.h"

#include <algorithm>

#include "persist/snapshot.h"

namespace fchain::core {

namespace {

std::string snapshotPathFor(const std::string& dir, HostId host) {
  return dir + "/slave_" + std::to_string(host) + ".snap";
}

std::string journalPathFor(const std::string& dir, HostId host) {
  return dir + "/slave_" + std::to_string(host) + ".journal";
}

}  // namespace

SlaveCheckpointer::SlaveCheckpointer(FChainSlave& slave, std::string dir,
                                     CheckpointPolicy policy)
    : slave_(slave), dir_(std::move(dir)), policy_(policy) {
  // Sample-time extent of whatever state is already persisted in dir_. The
  // first checkpointNow() below replaces that state with the wrapped
  // slave's; if the slave does not carry it (it was not built via
  // recover()), the overwrite would destroy a crashed slave's history —
  // refuse, loudly, unless the policy opts in.
  TimeSec persisted_end = 0;
  if (persist::fileExists(snapshotPath())) {
    const persist::SlaveSnapshot snap =
        persist::loadSlaveSnapshot(snapshotPath());
    // Continue the epoch sequence of whatever generation is already there.
    epoch_ = snap.epoch;
    for (const persist::VmSnapshotState& vm : snap.vms) {
      for (const persist::SeriesState& series : vm.series) {
        persisted_end = std::max(
            persisted_end,
            series.start + static_cast<TimeSec>(series.values.size()));
      }
    }
  }
  if (persist::fileExists(journalPath())) {
    const persist::SampleJournalReplay replay =
        persist::readSampleJournal(journalPath());
    for (const persist::SampleRecord& record : replay.records) {
      persisted_end = std::max(persisted_end, record.t + 1);
    }
  }
  // A slave rebuilt via recover() always carries samples when the persisted
  // state does (it may trail persisted_end when replay deterministically
  // *dropped* tail records — corrupt timestamps, over-wide gaps — so an
  // exact-extent comparison would reject legitimate recoveries). A slave
  // with an empty clock over sampled state is the unambiguous footgun.
  if (persisted_end > 0 && sampleClock() == 0 &&
      !policy_.discard_unrecovered_state) {
    throw std::runtime_error(
        "checkpoint dir " + dir_ + " holds learned state for host " +
        std::to_string(slave_.host()) + " through t=" +
        std::to_string(persisted_end) +
        " but the wrapped slave is fresh; wrap "
        "SlaveCheckpointer::recover()'s slave or set "
        "CheckpointPolicy::discard_unrecovered_state to overwrite it");
  }
  checkpointNow();
}

std::string SlaveCheckpointer::snapshotPath() const {
  return snapshotPathFor(dir_, slave_.host());
}

std::string SlaveCheckpointer::journalPath() const {
  return journalPathFor(dir_, slave_.host());
}

std::size_t SlaveCheckpointer::journaledSinceSnapshot() const {
  return journal_ ? journal_->recordsWritten() : 0;
}

TimeSec SlaveCheckpointer::sampleClock() const {
  TimeSec now = 0;
  for (ComponentId id : slave_.components()) {
    if (const MetricSeries* series = slave_.seriesOf(id)) {
      now = std::max(now, series->endTime());
    }
  }
  return now;
}

void SlaveCheckpointer::checkpointNow() {
  ++epoch_;
  // Snapshot first (atomic rename), truncate the journal after: a crash in
  // between leaves journal records the snapshot already contains, and
  // replaying those is value-safe (see header).
  persist::saveSlaveSnapshot(snapshotPath(), slave_.snapshot(epoch_));
  journal_.emplace(journalPath(), epoch_, /*truncate=*/true);
  last_checkpoint_end_ = sampleClock();
}

void SlaveCheckpointer::ingestAt(
    ComponentId id, TimeSec t,
    const std::array<double, kMetricCount>& sample) {
  journal_->append({id, t, sample});
  slave_.ingestAt(id, t, sample);
  if (t >= last_checkpoint_end_ + policy_.snapshot_interval_sec) {
    checkpointNow();
  }
}

void SlaveCheckpointer::ingest(
    ComponentId id, const std::array<double, kMetricCount>& sample) {
  const MetricSeries* series = slave_.seriesOf(id);
  if (series == nullptr) return;
  ingestAt(id, series->endTime(), sample);
}

bool SlaveCheckpointer::hasState(const std::string& dir, HostId host) {
  return persist::fileExists(snapshotPathFor(dir, host)) ||
         persist::fileExists(journalPathFor(dir, host));
}

SlaveCheckpointer::Recovered SlaveCheckpointer::recover(
    const std::string& dir, HostId host, FChainConfig config) {
  Recovered result{FChainSlave(host, config)};
  const std::string snapshot_path = snapshotPathFor(dir, host);
  if (persist::fileExists(snapshot_path)) {
    const persist::SlaveSnapshot snap =
        persist::loadSlaveSnapshot(snapshot_path);
    if (snap.host != host) {
      throw std::runtime_error("snapshot " + snapshot_path + " is for host " +
                               std::to_string(snap.host) + ", not " +
                               std::to_string(host));
    }
    result.slave = FChainSlave::fromSnapshot(snap, std::move(config));
    result.epoch = snap.epoch;
  }
  const std::string journal_path = journalPathFor(dir, host);
  if (persist::fileExists(journal_path)) {
    const persist::SampleJournalReplay replay =
        persist::readSampleJournal(journal_path);
    result.journal_clean = replay.clean;
    // Replay everything unconditionally. Records the snapshot already
    // contains hit the duplicate path (equal values overwritten, models
    // untouched); skipping by timestamp would wrongly drop legitimate
    // out-of-order overwrites.
    for (const persist::SampleRecord& record : replay.records) {
      result.slave.ingestAt(record.component, record.t, record.sample);
      ++result.replayed;
    }
  }
  return result;
}

std::vector<RerunIncident> rerunPendingIncidents(
    FChainMaster& master, persist::IncidentJournal& journal) {
  std::vector<RerunIncident> reruns;
  for (persist::IncidentJournal::Pending& pending :
       persist::IncidentJournal::pending(journal.path())) {
    RerunIncident rerun;
    rerun.id = pending.id;
    rerun.components = std::move(pending.components);
    rerun.violation_time = pending.violation_time;
    rerun.result = master.localize(rerun.components, rerun.violation_time);
    journal.logDone(rerun.id);
    reruns.push_back(std::move(rerun));
  }
  return reruns;
}

}  // namespace fchain::core
