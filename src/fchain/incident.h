// Incident reporting: the top of the public API.
//
// `diagnoseIncident` bundles the whole pipeline — dependency discovery,
// adaptive-window localization, optional online validation — and returns a
// structured report with the evidence behind the verdict, plus a
// `formatIncidentReport` renderer for humans/on-call tooling. This is the
// single call a downstream system integrates against.
#pragma once

#include <optional>
#include <string>

#include "fchain/adaptive.h"
#include "fchain/validation.h"
#include "netdep/dependency.h"

namespace fchain::core {

struct DiagnosisOptions {
  FChainConfig config;
  AdaptiveWindowConfig adaptive;
  /// Use the adaptive window ladder (otherwise config.lookback_sec fixed).
  bool adaptive_window = true;
  /// Discover dependencies from the record's traffic (otherwise none used).
  bool discover_dependencies = true;
};

struct IncidentReport {
  /// False when the record carries no SLO violation (nothing to diagnose).
  bool diagnosed = false;
  TimeSec violation_time = 0;
  TimeSec lookback_window = 0;

  /// The verdict.
  PinpointResult result;
  /// Validation outcome (set only when a snapshot was supplied).
  std::optional<std::vector<ComponentId>> validated;

  /// Evidence context.
  std::size_t dependency_edges = 0;
  bool dependency_available = false;
};

/// Runs the full diagnosis over a recorded incident. When `snapshot` is
/// non-null, online validation refines the pinpointed set.
IncidentReport diagnoseIncident(const sim::RunRecord& record,
                                const sim::Simulation* snapshot = nullptr,
                                const DiagnosisOptions& options = {});

/// Multi-line human-readable rendering of the report (component names taken
/// from the record).
std::string formatIncidentReport(const IncidentReport& report,
                                 const sim::RunRecord& record);

}  // namespace fchain::core
