#include "fchain/pinpoint.h"

#include <algorithm>

namespace fchain::core {

PinpointResult IntegratedPinpointer::pinpoint(
    std::vector<ComponentFinding> findings, std::size_t total_components,
    const netdep::DependencyGraph* dependencies,
    std::optional<std::size_t> analyzed_components) const {
  PinpointResult result;
  const std::size_t analyzed =
      std::min(analyzed_components.value_or(total_components),
               total_components);
  result.coverage = total_components == 0
                        ? 1.0
                        : static_cast<double>(analyzed) /
                              static_cast<double>(total_components);
  if (findings.empty()) return result;

  std::sort(findings.begin(), findings.end(),
            [](const ComponentFinding& a, const ComponentFinding& b) {
              if (a.onset != b.onset) return a.onset < b.onset;
              return a.component < b.component;
            });
  result.chain = findings;

  // External-factor check: every component abnormal and *every* abnormal
  // metric trending the same way -> workload change (up) or shared-service
  // degradation (down). A single counter-trending metric anywhere (e.g. the
  // spinning task's CPU burn during a stall) vetoes the external verdict.
  const TimeSec onset_spread = findings.back().onset - findings.front().onset;
  if (config_.detect_external_factor &&
      findings.size() == total_components && total_components > 1 &&
      onset_spread <= config_.external_max_spread_sec) {
    const Trend trend = findings.front().trend;
    const bool uniform = std::all_of(
        findings.begin(), findings.end(), [trend](const ComponentFinding& f) {
          return std::all_of(f.metrics.begin(), f.metrics.end(),
                             [trend](const MetricFinding& m) {
                               return m.trend == trend;
                             });
        });
    if (uniform) {
      result.external_factor = true;
      result.external_trend = trend;
      return result;  // nothing inside the application is pinpointed
    }
  }

  // Chain head + concurrent faults.
  const TimeSec head_onset = findings.front().onset;
  std::vector<bool> pinned(findings.size(), false);
  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (findings[i].onset - head_onset <= config_.concurrency_threshold_sec) {
      pinned[i] = true;
    }
  }

  // Dependency refinement: a suspicious component unreachable from (and
  // unable to reach) every pinpointed component must hold its own fault.
  const bool have_deps = config_.use_dependency && dependencies != nullptr &&
                         !dependencies->empty();
  if (have_deps) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t i = 0; i < findings.size(); ++i) {
        if (pinned[i]) continue;
        bool explained = false;
        for (std::size_t j = 0; j < findings.size(); ++j) {
          if (!pinned[j]) continue;
          if (dependencies->connectedEitherWay(findings[j].component,
                                               findings[i].component)) {
            explained = true;
            break;
          }
        }
        if (!explained) {
          pinned[i] = true;  // independent fault
          changed = true;    // it may now explain later components
        }
      }
    }
  }

  for (std::size_t i = 0; i < findings.size(); ++i) {
    if (pinned[i]) result.pinpointed.push_back(findings[i].component);
  }
  std::sort(result.pinpointed.begin(), result.pinpointed.end());
  return result;
}

}  // namespace fchain::core
