// Applies fault specs to a running application (paper §III-A).
//
// At the spec's start time the injector flips the corresponding knobs in the
// target components' FaultState (or re-routes traffic for the two RUBiS
// software bugs, or perturbs the external workload for the external
// factors). Time-evolving behaviour (leak growth, DiskHog ramp-up) is then
// advanced by Application::step itself.
//
// A second, deliberately separate injector models *monitoring* faults — the
// telemetry plane failing while the application is (or is not) healthy:
// sample-drop bursts, value corruption (NaN/inf/garbage readings) and whole
// slave outage windows. These never touch the application; they decide what
// the FChain slaves get to see.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "faults/fault.h"
#include "sim/application.h"

namespace fchain::sim {

class FaultInjector {
 public:
  explicit FaultInjector(std::vector<faults::FaultSpec> specs = {})
      : specs_(std::move(specs)) {}

  void add(faults::FaultSpec spec) { specs_.push_back(std::move(spec)); }

  const std::vector<faults::FaultSpec>& specs() const { return specs_; }

  /// Call once per tick *before* Application::step; injects any spec whose
  /// start time equals `now`.
  void apply(Application& app, TimeSec now);

 private:
  std::vector<faults::FaultSpec> specs_;
  std::vector<bool> fired_;
};

/// Ground-truth union of faulty components across all specs (empty for
/// external factors).
std::vector<ComponentId> groundTruth(
    const std::vector<faults::FaultSpec>& specs);

// --- Monitoring (telemetry) faults --------------------------------------

enum class TelemetryFaultType : std::uint8_t {
  SampleDropBurst,  ///< samples lost in transit during the window
  ValueCorruption,  ///< readings replaced by NaN / +-inf / wild values
  SlaveOutage,      ///< the slave on the listed hosts is unreachable
};

std::string_view telemetryFaultTypeName(TelemetryFaultType type);

struct TelemetryFaultSpec {
  TelemetryFaultType type = TelemetryFaultType::SampleDropBurst;
  TimeSec start_time = 0;
  /// Window length; 0 means "until the end of the run".
  TimeSec duration_sec = 0;
  /// Affected components (drop/corruption); empty means every component.
  std::vector<ComponentId> targets;
  /// Affected hosts (SlaveOutage only).
  std::vector<HostId> hosts;
  /// Per-sample probability of dropping / corrupting within the window.
  double rate = 1.0;
  std::uint64_t seed = 0;
};

/// Decides, deterministically per (spec seed, component, second), which
/// samples the monitoring plane loses or mangles. Stateless queries: the
/// same spec always yields the same loss pattern regardless of call order,
/// which keeps trials reproducible and lets callers probe any (id, t).
class TelemetryFaultInjector {
 public:
  explicit TelemetryFaultInjector(std::vector<TelemetryFaultSpec> specs = {})
      : specs_(std::move(specs)) {}

  void add(TelemetryFaultSpec spec) { specs_.push_back(std::move(spec)); }
  const std::vector<TelemetryFaultSpec>& specs() const { return specs_; }

  /// True when component `id`'s sample at time `now` never reaches its
  /// slave (the slave sees a gap).
  bool sampleDropped(ComponentId id, TimeSec now) const;

  /// Applies value corruption in place; returns true when any metric of the
  /// sample was mangled (to NaN, +-inf, or a wildly scaled value).
  bool corruptSample(ComponentId id, TimeSec now,
                     std::array<double, kMetricCount>& sample) const;

  /// True when the slave on `host` is inside an outage window at `now`.
  bool slaveDown(HostId host, TimeSec now) const;

 private:
  std::vector<TelemetryFaultSpec> specs_;
};

// --- Slave process crashes ------------------------------------------------

/// One slave-process crash/restart cycle. Unlike a SlaveOutage (the slave is
/// alive but unreachable, state intact), a crash kills the process: all
/// in-memory model state is gone and the replacement at `restart_time`
/// starts from whatever was persisted (core::SlaveCheckpointer) — or from
/// nothing.
struct CrashSpec {
  HostId host = 0;
  TimeSec crash_time = 0;
  /// When the replacement process comes up; 0 = never (down for the run).
  TimeSec restart_time = 0;
};

/// Deterministic schedule of slave-process deaths for crash-recovery
/// experiments. Stateless queries like TelemetryFaultInjector: the driver
/// probes crashesAt()/restartsAt() each tick and kills/rebuilds its slaves
/// accordingly.
class CrashInjector {
 public:
  explicit CrashInjector(std::vector<CrashSpec> specs = {})
      : specs_(std::move(specs)) {}

  void add(CrashSpec spec) { specs_.push_back(spec); }
  const std::vector<CrashSpec>& specs() const { return specs_; }

  /// True when the slave on `host` dies exactly at `now`.
  bool crashesAt(HostId host, TimeSec now) const;

  /// True when a replacement for `host` comes up exactly at `now`.
  bool restartsAt(HostId host, TimeSec now) const;

  /// True when `host` has no live slave at `now`
  /// (crash_time <= now < restart_time, or forever when never restarted).
  bool down(HostId host, TimeSec now) const;

 private:
  std::vector<CrashSpec> specs_;
};

}  // namespace fchain::sim
