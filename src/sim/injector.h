// Applies fault specs to a running application (paper §III-A).
//
// At the spec's start time the injector flips the corresponding knobs in the
// target components' FaultState (or re-routes traffic for the two RUBiS
// software bugs, or perturbs the external workload for the external
// factors). Time-evolving behaviour (leak growth, DiskHog ramp-up) is then
// advanced by Application::step itself.
#pragma once

#include <vector>

#include "faults/fault.h"
#include "sim/application.h"

namespace fchain::sim {

class FaultInjector {
 public:
  explicit FaultInjector(std::vector<faults::FaultSpec> specs = {})
      : specs_(std::move(specs)) {}

  void add(faults::FaultSpec spec) { specs_.push_back(std::move(spec)); }

  const std::vector<faults::FaultSpec>& specs() const { return specs_; }

  /// Call once per tick *before* Application::step; injects any spec whose
  /// start time equals `now`.
  void apply(Application& app, TimeSec now);

 private:
  std::vector<faults::FaultSpec> specs_;
  std::vector<bool> fired_;
};

/// Ground-truth union of faulty components across all specs (empty for
/// external factors).
std::vector<ComponentId> groundTruth(
    const std::vector<faults::FaultSpec>& specs);

}  // namespace fchain::sim
