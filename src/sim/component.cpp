#include "sim/component.h"

#include <algorithm>
#include <cmath>

namespace fchain::sim {

double effectiveCpuCapacity(const ComponentSpec& spec, const FaultState& fault,
                            double memory_mb) {
  double capacity = spec.cpu_capacity * fault.scale_cpu * fault.cpu_cap_factor;

  // A co-located hog takes its fair scheduler share of whatever the VM has.
  capacity *= 1.0 - fault.hog_share;

  // Absorbing NetHog flood traffic burns CPU before useful work runs.
  capacity -= fault.extra_net_in_kbs * fault.net_hog_cpu_per_kb;

  // Multi-tenant interference from co-located VMs.
  capacity -= fault.interference_cpu;

  // Swap thrashing: past the memory limit, useful throughput collapses
  // steeply (each page fault stalls the server).
  const double limit = spec.mem_limit * fault.scale_mem;
  if (memory_mb > limit) {
    const double overshoot = (memory_mb - limit) / limit;
    capacity *= std::max(0.03, 1.0 - 4.0 * overshoot);
  }

  return std::max(0.0, capacity);
}

double effectiveDiskCapacity(const ComponentSpec& spec,
                             const FaultState& fault) {
  return std::max(0.0, spec.disk_capacity * fault.scale_disk *
                           (1.0 - fault.disk_contention));
}

double memoryUsage(const ComponentSpec& spec, const FaultState& fault,
                   double total_queue) {
  return spec.mem_base + spec.mem_per_queued * total_queue + fault.leaked_mb;
}

std::array<double, kMetricCount> baseMetrics(const ComponentSpec& spec,
                                             const ComponentState& state) {
  const FaultState& fault = state.fault;
  const double total_queue = state.totalQueue();
  const double memory = memoryUsage(spec, fault, total_queue);

  // The VM's CPU usage percentage is reported against its *nominal*
  // allocation: work + background + any hog/spin inside the VM. A hog
  // co-located in the same VM pushes the reading toward 100 %; a Bottleneck
  // cap makes the reading drop (the VM cannot get cycles).
  double busy_cores = state.processed * spec.cpu_demand + spec.background_cpu;
  // The hog spins in whatever share it owns.
  busy_cores += fault.hog_share * spec.cpu_capacity * fault.cpu_cap_factor;
  busy_cores += fault.extra_net_in_kbs * fault.net_hog_cpu_per_kb;
  if (fault.infinite_loop) {
    // The buggy task spins with whatever headroom exists.
    busy_cores = spec.cpu_capacity * fault.cpu_cap_factor;
  }
  const double allowed =
      spec.cpu_capacity * fault.scale_cpu * fault.cpu_cap_factor;
  busy_cores = std::min(busy_cores, allowed);
  const double cpu_pct = 100.0 * busy_cores / spec.cpu_capacity;

  // Swap traffic once memory pressure kicks in.
  const double limit = spec.mem_limit * fault.scale_mem;
  double swap_kbs = 0.0;
  if (memory > limit) {
    swap_kbs = std::min(30000.0, 2000.0 * (memory - limit) / limit * 10.0);
  }

  std::array<double, kMetricCount> sample{};
  sample[metricIndex(MetricKind::CpuUsage)] = cpu_pct;
  sample[metricIndex(MetricKind::MemoryUsage)] = memory;
  // Batch-burst components report the traffic of their periodic fetches;
  // everyone else sees arrivals as they come.
  const double inbound =
      spec.burst_period_sec > 0 ? state.fetched : state.arrived;
  sample[metricIndex(MetricKind::NetworkIn)] =
      inbound * spec.net_in_per_unit + fault.extra_net_in_kbs;
  sample[metricIndex(MetricKind::NetworkOut)] =
      state.emitted * spec.net_out_per_unit;
  sample[metricIndex(MetricKind::DiskRead)] =
      state.processed * spec.disk_read_per_unit + swap_kbs * 0.5;
  sample[metricIndex(MetricKind::DiskWrite)] =
      state.processed * spec.disk_write_per_unit + spec.background_disk_w +
      swap_kbs;
  return sample;
}

}  // namespace fchain::sim
