#include "sim/application.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace fchain::sim {

namespace {
constexpr double kEps = 1e-9;
constexpr double kMaxComponentDelay = 300.0;  // seconds; stall cap
}  // namespace

Application::Application(ApplicationSpec spec, std::uint64_t noise_seed)
    : spec_(std::move(spec)), rng_(noise_seed) {
  const std::size_t n = spec_.components.size();
  if (n == 0) throw std::invalid_argument("Application needs components");
  for (const EdgeSpec& e : spec_.edges) {
    if (e.from >= n || e.to >= n) {
      throw std::invalid_argument("Application edge out of range");
    }
  }

  states_.resize(n);
  in_edges_.resize(n);
  out_edges_.resize(n);
  noise_ar_.resize(n);
  spike_ticks_left_.assign(n, 0);
  for (std::size_t e = 0; e < spec_.edges.size(); ++e) {
    out_edges_[spec_.edges[e].from].push_back(e);
    in_edges_[spec_.edges[e].to].push_back(e);
  }
  edge_traffic_.assign(spec_.edges.size(), 0.0);
  edge_cache_demand_.assign(spec_.edges.size(), 0.0);
  edge_retry_factor_.assign(spec_.edges.size(), 1.0);
  staged_.resize(spec_.edges.size());
  for (std::size_t e = 0; e < spec_.edges.size(); ++e) {
    staged_[e].assign(std::max<std::size_t>(1, spec_.edges[e].delay_sec), 0.0);
  }

  for (std::size_t i = 0; i < n; ++i) {
    const ComponentSpec& cspec = spec_.components[i];
    ComponentState& state = states_[i];
    // Sources get one pseudo-queue for external arrivals.
    const std::size_t queues = std::max<std::size_t>(1, in_edges_[i].size());
    state.in_queues.assign(queues, 0.0);
    state.self_work_remaining = cspec.self_work_total;
    self_work_total_ += cspec.self_work_total;
    metrics_.emplace_back(MetricSeries(0));
    if (in_edges_[i].empty() && cspec.self_work_total <= 0.0) {
      sources_.push_back(static_cast<ComponentId>(i));
    }
    for (double& ar : noise_ar_[i]) ar = 0.0;
  }

  // Topological order (Kahn) for the critical-path latency DP.
  std::vector<std::size_t> indegree(n, 0);
  for (const EdgeSpec& e : spec_.edges) ++indegree[e.to];
  std::vector<ComponentId> frontier;
  for (std::size_t i = 0; i < n; ++i) {
    if (indegree[i] == 0) frontier.push_back(static_cast<ComponentId>(i));
  }
  while (!frontier.empty()) {
    const ComponentId id = frontier.back();
    frontier.pop_back();
    topo_order_.push_back(id);
    for (std::size_t e : out_edges_[id]) {
      if (--indegree[spec_.edges[e].to] == 0) {
        frontier.push_back(spec_.edges[e].to);
      }
    }
  }
  if (topo_order_.size() != n) {
    throw std::invalid_argument("Application topology contains a cycle");
  }
  path_latency_.assign(n, 0.0);
}

void Application::setWorkload(std::vector<double> trace) {
  workload_ = std::move(trace);
}

void Application::setEdgeWeight(ComponentId from, ComponentId to,
                                double weight) {
  for (EdgeSpec& e : spec_.edges) {
    if (e.from == from && e.to == to) e.weight = weight;
  }
}

ComponentId Application::findComponent(std::string_view name) const {
  for (std::size_t i = 0; i < spec_.components.size(); ++i) {
    if (spec_.components[i].name == name) return static_cast<ComponentId>(i);
  }
  return kNoComponent;
}

double Application::capacityThroughput(ComponentId id) const {
  const ComponentSpec& cspec = spec_.components[id];
  const ComponentState& state = states_[id];
  const double memory =
      memoryUsage(cspec, state.fault, state.totalQueue());
  const double cpu_cap = effectiveCpuCapacity(cspec, state.fault, memory);
  double throughput = cpu_cap / std::max(kEps, cspec.cpu_demand);

  const double disk_per_unit =
      cspec.disk_read_per_unit + cspec.disk_write_per_unit;
  if (disk_per_unit > kEps) {
    const double disk_cap = effectiveDiskCapacity(cspec, state.fault);
    throughput = std::min(throughput, disk_cap / disk_per_unit);
  }
  // CallLatency: with only call_slots concurrent outstanding RPCs and every
  // call blocked for call_latency_extra_sec, the caller's worker threads cap
  // sustainable throughput at slots/latency regardless of CPU headroom.
  if (state.fault.call_latency_extra_sec > 0.0 &&
      state.fault.call_slots > 0.0 && !out_edges_[id].empty()) {
    throughput = std::min(
        throughput,
        state.fault.call_slots / state.fault.call_latency_extra_sec);
  }
  if (state.fault.infinite_loop) throughput = 0.0;
  return throughput;
}

void Application::step() {
  const std::size_t n = spec_.components.size();

  // --- 1. Fault dynamics that evolve with time. ---
  for (std::size_t i = 0; i < n; ++i) {
    FaultState& fault = states_[i].fault;
    fault.leaked_mb += fault.leak_rate_mb_s;
    if (fault.extra_net_in_kbs < fault.extra_net_in_target) {
      fault.extra_net_in_kbs = std::min(
          fault.extra_net_in_target,
          fault.extra_net_in_kbs + fault.extra_net_in_ramp);
    }
    if (fault.disk_contention < fault.disk_contention_target) {
      fault.disk_contention =
          std::min(fault.disk_contention_target,
                   fault.disk_contention + fault.disk_contention_ramp);
    }
  }

  // --- 2. External arrivals (into source pseudo-queues). ---
  double intensity = 0.0;
  if (workload_provider_) {
    intensity = workload_provider_(now_) * workload_multiplier_;
  } else if (!workload_.empty()) {
    const auto idx = std::min<std::size_t>(static_cast<std::size_t>(now_),
                                           workload_.size() - 1);
    intensity = workload_[idx] * workload_multiplier_;
  }
  for (std::size_t i = 0; i < n; ++i) states_[i].arrived = 0.0;
  if (!sources_.empty() && intensity > 0.0) {
    const double share = intensity / static_cast<double>(sources_.size());
    for (ComponentId src : sources_) {
      ComponentState& state = states_[src];
      const double free =
          spec_.components[src].buffer_limit - state.in_queues[0];
      const double accepted = std::clamp(share, 0.0, std::max(0.0, free));
      state.in_queues[0] += accepted;
      state.arrived += share;  // the NIC sees the flood even if we drop
      state.dropped += share - accepted;
    }
  }

  // --- 3. Deliver the work whose transfer delay has elapsed. ---
  for (std::size_t e = 0; e < spec_.edges.size(); ++e) {
    auto& pipeline = staged_[e];
    const double delivered = pipeline.front();
    pipeline.erase(pipeline.begin());
    pipeline.push_back(0.0);
    if (delivered <= 0.0) continue;
    const EdgeSpec& edge = spec_.edges[e];
    ComponentState& dst = states_[edge.to];
    // Position of edge e within dst's in-queue list.
    const auto& ins = in_edges_[edge.to];
    const auto pos = static_cast<std::size_t>(
        std::find(ins.begin(), ins.end(), e) - ins.begin());
    if (edge.max_retries > 0) {
      // Open-loop RPC edge: the caller did not respect back-pressure, so the
      // receiver sheds whatever exceeds its buffer (the NIC still sees the
      // full arrival — an overloaded callee looks overloaded).
      const double free = std::max(
          0.0, spec_.components[edge.to].buffer_limit - dst.in_queues[pos]);
      const double accepted = std::min(delivered, free);
      dst.in_queues[pos] += accepted;
      dst.arrived += delivered;
      dst.dropped += delivered - accepted;
    } else {
      dst.in_queues[pos] += delivered;
      dst.arrived += delivered;
    }
  }

  // --- 4. Process every component against capacity and back-pressure. ---
  std::fill(edge_traffic_.begin(), edge_traffic_.end(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const ComponentSpec& cspec = spec_.components[i];
    ComponentState& state = states_[i];

    // Work available this tick.
    double available;
    if (cspec.self_work_total > 0.0) {
      available = std::min(cspec.self_work_rate, state.self_work_remaining);
    } else if (cspec.join_inputs && !in_edges_[i].empty()) {
      available = std::numeric_limits<double>::infinity();
      for (double q : state.in_queues) available = std::min(available, q);
    } else {
      available = state.totalQueue();
    }

    // Back-pressure: emission is limited by downstream per-edge free space.
    // The receiver drains concurrently with the sender's transmission, so
    // its expected drain this tick counts as free space — without it a
    // marginal buffer settles into a lossy burst/stall oscillation.
    double allowance = std::numeric_limits<double>::infinity();
    for (std::size_t e : out_edges_[i]) {
      const EdgeSpec& edge = spec_.edges[e];
      if (edge.weight <= kEps) continue;
      // Bounded-retry RPC clients are open-loop: the caller keeps sending
      // regardless of downstream buffer space (overflow is shed on
      // delivery), so a retrying edge never throttles its caller.
      if (edge.max_retries > 0) continue;
      const auto& ins = in_edges_[edge.to];
      const auto pos = static_cast<std::size_t>(
          std::find(ins.begin(), ins.end(), e) - ins.begin());
      double in_flight = 0.0;
      for (double slot : staged_[e]) in_flight += slot;
      const ComponentSpec& to_spec = spec_.components[edge.to];
      double expected_drain = 0.0;
      const bool bursting =
          to_spec.burst_period_sec == 0 ||
          static_cast<std::size_t>(now_) % to_spec.burst_period_sec <
              to_spec.burst_len_sec;
      if (bursting) {
        expected_drain = capacityThroughput(edge.to) /
                         static_cast<double>(std::max<std::size_t>(1, ins.size()));
      }
      const double free = to_spec.buffer_limit -
                          states_[edge.to].in_queues[pos] - in_flight +
                          expected_drain;
      allowance = std::min(
          allowance, std::max(0.0, free) /
                         (cspec.amplification * edge.weight + kEps));
    }

    // Batch-burst components idle between their periodic merge bursts, and
    // pull the accumulated input in a burst-aligned fetch (geometric drain:
    // a large chunk at burst start, tapering off).
    if (cspec.burst_period_sec > 0) {
      const auto phase = static_cast<std::size_t>(now_) % cspec.burst_period_sec;
      state.fetch_backlog += state.arrived;
      if (phase < cspec.burst_len_sec) {
        state.fetched = state.fetch_backlog * 0.6;
        state.fetch_backlog -= state.fetched;
      } else {
        state.fetched = 0.0;
        available = 0.0;
      }
    }

    const double processed =
        std::max(0.0, std::min({available, capacityThroughput(
                                               static_cast<ComponentId>(i)),
                                allowance}));
    state.processed = processed;

    // Dequeue.
    if (cspec.self_work_total > 0.0) {
      state.self_work_remaining -= processed;
    } else if (cspec.join_inputs && !in_edges_[i].empty()) {
      for (double& q : state.in_queues) q -= processed;
    } else if (processed > 0.0) {
      const double total = state.totalQueue();
      if (total > kEps) {
        for (double& q : state.in_queues) q -= processed * (q / total);
      }
    }

    // Emit (visible downstream next tick).
    state.emitted = 0.0;
    // CallFailure: a fraction of outbound calls fail before reaching the
    // callee and will be retried by the caller (re-queued below).
    const double fail_rate =
        out_edges_[i].empty()
            ? 0.0
            : std::clamp(state.fault.call_failure_rate, 0.0, 0.99);
    // CallLatency: whole seconds of extra RPC delay hold emissions in the
    // transfer pipeline for extra ticks (the fractional part contributes to
    // the latency estimate instead).
    const auto extra_ticks =
        static_cast<std::size_t>(state.fault.call_latency_extra_sec);
    for (std::size_t e : out_edges_[i]) {
      const EdgeSpec& edge = spec_.edges[e];
      double units =
          processed * (1.0 - fail_rate) * cspec.amplification * edge.weight;
      // Caller-side cache: a fraction of calls is answered locally and never
      // traverses the edge. The effective hit ratio degrades once smoothed
      // demand outgrows the cache's working-set knee, so a surge turns into
      // a miss storm on the tier behind the cache.
      if (edge.cache_hit_ratio > 0.0) {
        double& demand = edge_cache_demand_[e];
        demand = 0.8 * demand + 0.2 * units;
        double hit = edge.cache_hit_ratio;
        if (edge.cache_knee > 0.0 && demand > edge.cache_knee) {
          hit *= edge.cache_knee / demand;
        }
        units *= 1.0 - hit;
      }
      // Retry storm: once the callee's queue fill crosses the timeout
      // threshold, the caller duplicates calls — linearly up to the bounded
      // 1 + max_retries. The duplicates are *real* downstream load (they get
      // processed and fan out further), which is the positive feedback that
      // multiplies upstream call volume under downstream slowdown; the
      // per-edge bound keeps the amplification provably finite.
      if (edge.max_retries > 0) {
        const ComponentSpec& to_spec = spec_.components[edge.to];
        const auto& ins = in_edges_[edge.to];
        const auto pos = static_cast<std::size_t>(
            std::find(ins.begin(), ins.end(), e) - ins.begin());
        double in_flight = 0.0;
        for (double slot : staged_[e]) in_flight += slot;
        const double fill = (states_[edge.to].in_queues[pos] + in_flight) /
                            std::max(kEps, to_spec.buffer_limit);
        const double theta = std::clamp(edge.retry_threshold, 0.0, 0.99);
        const double pressure =
            std::clamp((fill - theta) / (1.0 - theta), 0.0, 1.0);
        const double factor = 1.0 + edge.max_retries * pressure;
        edge_retry_factor_[e] = factor;
        units *= factor;
      }
      // The pipeline keeps its length across deliveries, so the slot for the
      // nominal transfer delay is fixed at delay_sec - 1 even after a
      // call-latency fault has grown the vector.
      const std::size_t slot =
          std::max<std::size_t>(1, edge.delay_sec) - 1 + extra_ticks;
      if (slot >= staged_[e].size()) staged_[e].resize(slot + 1, 0.0);
      staged_[e][slot] += units;
      edge_traffic_[e] += units;
      state.emitted += units;
    }
    if (fail_rate > 0.0 && processed > kEps) {
      // Retry: the failed units re-enter the caller's input and are served
      // again, so effective cost per delivered unit grows by 1/(1-rate).
      const double retried = processed * fail_rate;
      if (cspec.self_work_total > 0.0) {
        state.self_work_remaining += retried;
      } else {
        const double share =
            retried / static_cast<double>(state.in_queues.size());
        for (double& q : state.in_queues) q += share;
      }
    }
    if (out_edges_[i].empty()) {
      completed_total_ += processed;  // sink: work leaves the system
    }
  }

  // --- 5. Latency estimate: critical path over the whole DAG. Each
  // component contributes its service time plus the queueing delay implied
  // by its backlog; the end-to-end figure is the slowest source-to-sink
  // path (a join waits for its slowest input), so a bottleneck anywhere in
  // the topology shows up in the SLO signal. ---
  double latency = 0.0;
  for (std::size_t idx = 0; idx < topo_order_.size(); ++idx) {
    const ComponentId id = topo_order_[idx];
    const ComponentState& state = states_[id];
    const ComponentSpec& cspec = spec_.components[id];
    const double queue = state.totalQueue();
    // Per-request service time stretches by however much of the VM's
    // nominal capacity is unavailable (hog fair share, CPU caps, swap
    // thrashing) — and recovers when the validator scales the VM up.
    const double eff_capacity = effectiveCpuCapacity(
        cspec, state.fault, memoryUsage(cspec, state.fault, queue));
    const double slowdown =
        cspec.cpu_capacity / std::max(0.05 * cspec.cpu_capacity, eff_capacity);
    double delay = cspec.cpu_demand * slowdown;
    // CallLatency: the injected RPC-stack delay sits directly on the
    // request path of every outbound call.
    if (!out_edges_[id].empty()) delay += state.fault.call_latency_extra_sec;
    // Bounded retries: each duplicate round trip costs the caller a timeout
    // + backoff wait before the answer arrives (worst outbound edge counts —
    // the request path blocks on its slowest dependency).
    double retry_wait = 0.0;
    for (std::size_t e : out_edges_[id]) {
      const EdgeSpec& edge = spec_.edges[e];
      if (edge.max_retries > 0 && edge.retry_backoff_sec > 0.0) {
        retry_wait = std::max(retry_wait, (edge_retry_factor_[e] - 1.0) *
                                              edge.retry_backoff_sec);
      }
    }
    delay += retry_wait;
    if (queue > kEps) {
      delay += queue / std::max(state.processed, 0.5);
    }
    delay = std::min(delay, kMaxComponentDelay);
    // A join waits for its slowest input; a merge serves a traffic-weighted
    // mix of its inputs (the SLO is an *average* response time, so partial
    // relief on one branch must show).
    double upstream = 0.0;
    if (cspec.join_inputs) {
      for (std::size_t e : in_edges_[id]) {
        upstream = std::max(upstream, path_latency_[spec_.edges[e].from]);
      }
    } else if (!in_edges_[id].empty()) {
      double weighted = 0.0, weight_sum = 0.0;
      for (std::size_t e : in_edges_[id]) {
        const double weight = edge_traffic_[e] + 1e-6;
        weighted += weight * path_latency_[spec_.edges[e].from];
        weight_sum += weight;
      }
      upstream = weighted / weight_sum;
    }
    path_latency_[id] = upstream + delay;
    if (out_edges_[id].empty()) latency = std::max(latency, path_latency_[id]);
  }
  latency_ = latency;

  // --- 6. Record noisy metric samples. ---
  constexpr double ar_rho = 0.7;
  for (std::size_t i = 0; i < n; ++i) {
    const ComponentSpec& cspec = spec_.components[i];
    auto sample = baseMetrics(cspec, states_[i]);

    if (spike_ticks_left_[i] > 0) {
      --spike_ticks_left_[i];
    } else if (cspec.spike_probability > 0.0 &&
               rng_.chance(cspec.spike_probability)) {
      spike_ticks_left_[i] = static_cast<int>(1 + rng_.below(3));
    }
    const bool spiking = spike_ticks_left_[i] > 0;

    for (std::size_t m = 0; m < kMetricCount; ++m) {
      double& ar = noise_ar_[i][m];
      ar = ar_rho * ar + std::sqrt(1.0 - ar_rho * ar_rho) * rng_.gaussian();
      // Memory is far less jittery than throughput metrics.
      const double level = (m == metricIndex(MetricKind::MemoryUsage))
                               ? cspec.noise_level * 0.15
                               : cspec.noise_level;
      double value = sample[m] * (1.0 + level * ar);
      // Spill bursts are disk events; CPU stays merely noisy, so a pegged
      // (spinning) CPU remains a clean, detectable upward level shift.
      if (spiking && (m == metricIndex(MetricKind::DiskWrite) ||
                      m == metricIndex(MetricKind::DiskRead))) {
        value += cspec.spike_magnitude * std::max(sample[m], 1.0);
      }
      sample[m] = std::max(0.0, value);
    }
    metrics_[i].append(sample);
  }

  ++now_;
}

double Application::progress() const {
  if (self_work_total_ <= 0.0) return 0.0;
  // Completed work that has traversed the whole pipeline, normalized by the
  // total amount the self-sourcing stages will ever emit.
  double emitted_total = 0.0;
  for (std::size_t i = 0; i < spec_.components.size(); ++i) {
    if (spec_.components[i].self_work_total > 0.0) {
      double amp = spec_.components[i].amplification;
      emitted_total += spec_.components[i].self_work_total * std::max(amp, kEps);
    }
  }
  if (emitted_total <= 0.0) return 0.0;
  return std::clamp(completed_total_ / emitted_total, 0.0, 1.0);
}

}  // namespace fchain::sim
