#include "sim/cloud.h"

#include <algorithm>
#include <cmath>

namespace fchain::sim {

Cloud::Cloud(CloudConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  interference_ar_.assign(config_.host_count, 0.0);
  skew_ms_.reserve(config_.host_count);
  for (std::size_t h = 0; h < config_.host_count; ++h) {
    skew_ms_.push_back(
        rng_.uniform(-config_.max_clock_skew_ms, config_.max_clock_skew_ms));
  }
}

std::size_t Cloud::deploy(Application app) {
  std::vector<HostId> hosts;
  hosts.reserve(app.componentCount());
  for (ComponentId id = 0; id < app.componentCount(); ++id) {
    hosts.push_back(static_cast<HostId>(next_host_ % config_.host_count));
    ++next_host_;
  }
  placement_.push_back(std::move(hosts));
  apps_.push_back(std::move(app));
  return apps_.size() - 1;
}

HostId Cloud::hostOf(std::size_t app_index, ComponentId component) const {
  return placement_[app_index][component];
}

std::vector<ComponentId> Cloud::componentsOn(std::size_t app_index,
                                             HostId host) const {
  std::vector<ComponentId> components;
  const auto& hosts = placement_[app_index];
  for (ComponentId id = 0; id < hosts.size(); ++id) {
    if (hosts[id] == host) components.push_back(id);
  }
  return components;
}

void Cloud::step() {
  // Per-host interference wanders as AR(1) in [0, interference_level]; all
  // VMs on the host see the same contention this tick (correlated noise is
  // what distinguishes co-tenancy from independent jitter).
  constexpr double kRho = 0.9;
  for (std::size_t h = 0; h < config_.host_count; ++h) {
    double& ar = interference_ar_[h];
    ar = kRho * ar + std::sqrt(1.0 - kRho * kRho) * rng_.gaussian();
    const double steal =
        config_.interference_level * 0.5 * (1.0 + std::tanh(ar));
    for (std::size_t a = 0; a < apps_.size(); ++a) {
      for (ComponentId id = 0; id < apps_[a].componentCount(); ++id) {
        if (placement_[a][id] == h) {
          apps_[a].faultStateOf(id).interference_cpu = steal;
        }
      }
    }
  }
  for (Application& app : apps_) app.step();
}

}  // namespace fchain::sim
