#include "sim/record_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "faults/fault.h"
#include "persist/codec.h"

namespace fchain::sim {

namespace {

/// v1: bare body, no integrity protection (still loadable). v2: the header
/// line carries the body's byte length and CRC-32 (persist::crc32 — the
/// same checksum the snapshot/journal codec uses), so a truncated or
/// bit-rotted archive fails loudly with a byte offset instead of feeding
/// garbage to the Markov models.
constexpr char kMagicV1[] = "fchain-record-v1";
constexpr char kMagicV2[] = "fchain-record-v2";

/// Counts above this are a corrupt field, not a real workload (the largest
/// legitimate records hold a few thousand components / samples).
constexpr std::size_t kMaxCount = std::size_t{1} << 24;

void checkCount(std::size_t count, const char* what) {
  if (count > kMaxCount) {
    throw std::runtime_error("record parse error: implausible " +
                             std::string(what) + " count " +
                             std::to_string(count));
  }
}

std::string_view wireStyleName(WireStyle style) {
  return style == WireStyle::Streaming ? "streaming" : "request-reply";
}

WireStyle wireStyleFromName(std::string_view name) {
  return name == "streaming" ? WireStyle::Streaming : WireStyle::RequestReply;
}

void expect(std::istream& in, const std::string& keyword) {
  std::string token;
  in >> token;
  if (token != keyword) {
    throw std::runtime_error("record parse error: expected '" + keyword +
                             "', got '" + token + "'");
  }
}

/// Reads one metric/traffic value, rejecting NaN and +-inf with a clear
/// error. Stream extraction is platform-inconsistent about "nan"/"inf"
/// tokens, so the token is parsed explicitly: a corrupted record must fail
/// loudly here rather than poison the Markov models downstream.
double readFiniteValue(std::istream& in, const char* section) {
  std::string token;
  if (!(in >> token)) {
    throw std::runtime_error(std::string("record parse error: truncated ") +
                             section + " data");
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || !std::isfinite(value)) {
    throw std::runtime_error(std::string("record parse error: non-finite ") +
                             section + " value '" + token + "'");
  }
  return value;
}

/// Writes everything after the header line (shared by the v2 writer; the
/// format of the body itself is unchanged from v1).
void writeBody(std::ostream& out, const RunRecord& record) {
  out.precision(12);
  out << "app " << record.app_spec.name << " "
      << wireStyleName(record.app_spec.wire_style) << " "
      << (record.app_spec.batch ? 1 : 0) << "\n";

  out << "components " << record.app_spec.components.size() << "\n";
  for (const auto& component : record.app_spec.components) {
    out << component.name << "\n";
  }

  out << "edges " << record.app_spec.edges.size() << "\n";
  for (const auto& edge : record.app_spec.edges) {
    out << edge.from << " " << edge.to << " " << edge.weight << " "
        << edge.delay_sec << "\n";
  }

  out << "violation "
      << (record.violation_time.has_value()
              ? std::to_string(*record.violation_time)
              : std::string("none"))
      << "\n";

  out << "faults " << record.faults.size() << "\n";
  for (const auto& fault : record.faults) {
    out << faults::faultTypeName(fault.type) << " " << fault.start_time << " "
        << fault.intensity << " " << fault.targets.size();
    for (ComponentId target : fault.targets) out << " " << target;
    out << "\n";
  }

  out << "ground_truth " << record.ground_truth.size();
  for (ComponentId id : record.ground_truth) out << " " << id;
  out << "\n";

  // Metrics: per component, start time + one line per metric kind.
  out << "metrics " << record.metrics.size() << "\n";
  for (const auto& series : record.metrics) {
    const auto& first = series.of(MetricKind::CpuUsage);
    out << first.startTime() << " " << first.size() << "\n";
    for (MetricKind kind : kAllMetrics) {
      for (double value : series.of(kind).values()) out << value << " ";
      out << "\n";
    }
  }

  out << "edge_traffic " << record.edge_traffic.size() << "\n";
  for (const auto& traffic : record.edge_traffic) {
    out << traffic.size() << "\n";
    for (double value : traffic) out << value << " ";
    out << "\n";
  }
}

/// Parses everything after the header line (shared by the v1 and v2 load
/// paths).
RunRecord parseBody(std::istream& in) {
  RunRecord record;
  std::string token;

  expect(in, "app");
  std::string wire;
  int batch = 0;
  in >> record.app_spec.name >> wire >> batch;
  record.app_spec.wire_style = wireStyleFromName(wire);
  record.app_spec.batch = batch != 0;

  expect(in, "components");
  std::size_t component_count = 0;
  in >> component_count;
  checkCount(component_count, "component");
  record.app_spec.components.resize(component_count);
  for (auto& component : record.app_spec.components) {
    in >> component.name;
  }

  expect(in, "edges");
  std::size_t edge_count = 0;
  in >> edge_count;
  checkCount(edge_count, "edge");
  record.app_spec.edges.resize(edge_count);
  for (auto& edge : record.app_spec.edges) {
    in >> edge.from >> edge.to >> edge.weight >> edge.delay_sec;
  }

  expect(in, "violation");
  in >> token;
  if (token != "none") record.violation_time = std::stoll(token);

  expect(in, "faults");
  std::size_t fault_count = 0;
  in >> fault_count;
  checkCount(fault_count, "fault");
  record.faults.resize(fault_count);
  for (auto& fault : record.faults) {
    std::string type_name;
    std::size_t target_count = 0;
    in >> type_name >> fault.start_time >> fault.intensity >> target_count;
    // Linear scan over the small enum.
    for (int t = 0; t <= static_cast<int>(faults::FaultType::SharedSlowdown);
         ++t) {
      if (faults::faultTypeName(static_cast<faults::FaultType>(t)) ==
          type_name) {
        fault.type = static_cast<faults::FaultType>(t);
      }
    }
    checkCount(target_count, "fault target");
    fault.targets.resize(target_count);
    for (ComponentId& target : fault.targets) in >> target;
  }

  expect(in, "ground_truth");
  std::size_t truth_count = 0;
  in >> truth_count;
  checkCount(truth_count, "ground-truth");
  record.ground_truth.resize(truth_count);
  for (ComponentId& id : record.ground_truth) in >> id;

  expect(in, "metrics");
  std::size_t series_count = 0;
  in >> series_count;
  checkCount(series_count, "metric series");
  record.metrics.reserve(series_count);
  for (std::size_t s = 0; s < series_count; ++s) {
    TimeSec start = 0;
    std::size_t samples = 0;
    in >> start >> samples;
    checkCount(samples, "metric sample");
    MetricSeries series(start);
    std::array<std::vector<double>, kMetricCount> columns;
    for (auto& column : columns) {
      column.resize(samples);
      for (double& value : column) value = readFiniteValue(in, "metric");
    }
    for (std::size_t i = 0; i < samples; ++i) {
      std::array<double, kMetricCount> sample{};
      for (std::size_t m = 0; m < kMetricCount; ++m) sample[m] = columns[m][i];
      series.append(sample);
    }
    record.metrics.push_back(std::move(series));
  }

  expect(in, "edge_traffic");
  std::size_t traffic_count = 0;
  in >> traffic_count;
  checkCount(traffic_count, "edge-traffic series");
  record.edge_traffic.resize(traffic_count);
  for (auto& traffic : record.edge_traffic) {
    std::size_t samples = 0;
    in >> samples;
    checkCount(samples, "edge-traffic sample");
    traffic.resize(samples);
    for (double& value : traffic) {
      value = readFiniteValue(in, "edge_traffic");
    }
  }

  if (!in) throw std::runtime_error("record parse error: truncated file");
  return record;
}

}  // namespace

void saveRecord(std::ostream& out, const RunRecord& record) {
  // Render the body first so the header can declare its length and CRC.
  std::ostringstream body_out;
  writeBody(body_out, record);
  const std::string body = body_out.str();
  out << kMagicV2 << " " << body.size() << " "
      << persist::crc32(body.data(), body.size()) << "\n"
      << body;
}

void saveRecord(const std::string& path, const RunRecord& record) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create record file: " + path);
  saveRecord(out, record);
  if (!out) throw std::runtime_error("write failure on record file: " + path);
}

RunRecord loadRecord(std::istream& in) {
  std::string magic;
  in >> magic;
  if (magic == kMagicV1) {
    // Legacy archive: no integrity header, parse the body as-is.
    return parseBody(in);
  }
  if (magic != kMagicV2) {
    throw std::runtime_error("not an fchain record (bad magic)");
  }

  std::size_t declared_length = 0;
  std::uint32_t declared_crc = 0;
  if (!(in >> declared_length >> declared_crc)) {
    throw std::runtime_error("record parse error: damaged v2 header");
  }
  checkCount(declared_length, "body byte");
  in.get();  // the newline terminating the header line
  const std::streamoff body_offset = in.tellg();

  std::string body(declared_length, '\0');
  in.read(body.data(), static_cast<std::streamsize>(declared_length));
  const std::size_t got = static_cast<std::size_t>(in.gcount());
  if (got != declared_length) {
    throw persist::CorruptDataError(
        "record truncated: header declares " +
            std::to_string(declared_length) + " body bytes, file carries " +
            std::to_string(got),
        static_cast<std::size_t>(body_offset) + got);
  }
  const std::uint32_t actual_crc = persist::crc32(body.data(), body.size());
  if (actual_crc != declared_crc) {
    throw persist::CorruptDataError(
        "record checksum mismatch: header declares " +
            std::to_string(declared_crc) + ", body hashes to " +
            std::to_string(actual_crc),
        static_cast<std::size_t>(body_offset));
  }

  std::istringstream body_in(body);
  try {
    return parseBody(body_in);
  } catch (const persist::CorruptDataError&) {
    throw;
  } catch (const std::runtime_error& e) {
    // Attach where in the (verified-intact) body the parse gave up — with a
    // valid checksum this indicates a writer/reader bug, not bit rot.
    const std::streamoff pos = body_in.tellg();
    const std::size_t offset =
        static_cast<std::size_t>(body_offset) +
        (pos >= 0 ? static_cast<std::size_t>(pos) : body.size());
    throw persist::CorruptDataError(e.what(), offset);
  }
}

RunRecord loadRecord(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open record file: " + path);
  return loadRecord(in);
}

}  // namespace fchain::sim
