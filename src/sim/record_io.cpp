#include "sim/record_io.h"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "faults/fault.h"

namespace fchain::sim {

namespace {

constexpr char kMagic[] = "fchain-record-v1";

std::string_view wireStyleName(WireStyle style) {
  return style == WireStyle::Streaming ? "streaming" : "request-reply";
}

WireStyle wireStyleFromName(std::string_view name) {
  return name == "streaming" ? WireStyle::Streaming : WireStyle::RequestReply;
}

void expect(std::istream& in, const std::string& keyword) {
  std::string token;
  in >> token;
  if (token != keyword) {
    throw std::runtime_error("record parse error: expected '" + keyword +
                             "', got '" + token + "'");
  }
}

/// Reads one metric/traffic value, rejecting NaN and +-inf with a clear
/// error. Stream extraction is platform-inconsistent about "nan"/"inf"
/// tokens, so the token is parsed explicitly: a corrupted record must fail
/// loudly here rather than poison the Markov models downstream.
double readFiniteValue(std::istream& in, const char* section) {
  std::string token;
  if (!(in >> token)) {
    throw std::runtime_error(std::string("record parse error: truncated ") +
                             section + " data");
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0' || !std::isfinite(value)) {
    throw std::runtime_error(std::string("record parse error: non-finite ") +
                             section + " value '" + token + "'");
  }
  return value;
}

}  // namespace

void saveRecord(std::ostream& out, const RunRecord& record) {
  out.precision(12);
  out << kMagic << "\n";
  out << "app " << record.app_spec.name << " "
      << wireStyleName(record.app_spec.wire_style) << " "
      << (record.app_spec.batch ? 1 : 0) << "\n";

  out << "components " << record.app_spec.components.size() << "\n";
  for (const auto& component : record.app_spec.components) {
    out << component.name << "\n";
  }

  out << "edges " << record.app_spec.edges.size() << "\n";
  for (const auto& edge : record.app_spec.edges) {
    out << edge.from << " " << edge.to << " " << edge.weight << " "
        << edge.delay_sec << "\n";
  }

  out << "violation "
      << (record.violation_time.has_value()
              ? std::to_string(*record.violation_time)
              : std::string("none"))
      << "\n";

  out << "faults " << record.faults.size() << "\n";
  for (const auto& fault : record.faults) {
    out << faults::faultTypeName(fault.type) << " " << fault.start_time << " "
        << fault.intensity << " " << fault.targets.size();
    for (ComponentId target : fault.targets) out << " " << target;
    out << "\n";
  }

  out << "ground_truth " << record.ground_truth.size();
  for (ComponentId id : record.ground_truth) out << " " << id;
  out << "\n";

  // Metrics: per component, start time + one line per metric kind.
  out << "metrics " << record.metrics.size() << "\n";
  for (const auto& series : record.metrics) {
    const auto& first = series.of(MetricKind::CpuUsage);
    out << first.startTime() << " " << first.size() << "\n";
    for (MetricKind kind : kAllMetrics) {
      for (double value : series.of(kind).values()) out << value << " ";
      out << "\n";
    }
  }

  out << "edge_traffic " << record.edge_traffic.size() << "\n";
  for (const auto& traffic : record.edge_traffic) {
    out << traffic.size() << "\n";
    for (double value : traffic) out << value << " ";
    out << "\n";
  }
}

void saveRecord(const std::string& path, const RunRecord& record) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot create record file: " + path);
  saveRecord(out, record);
  if (!out) throw std::runtime_error("write failure on record file: " + path);
}

RunRecord loadRecord(std::istream& in) {
  RunRecord record;
  std::string token;
  in >> token;
  if (token != kMagic) {
    throw std::runtime_error("not an fchain record (bad magic)");
  }

  expect(in, "app");
  std::string wire;
  int batch = 0;
  in >> record.app_spec.name >> wire >> batch;
  record.app_spec.wire_style = wireStyleFromName(wire);
  record.app_spec.batch = batch != 0;

  expect(in, "components");
  std::size_t component_count = 0;
  in >> component_count;
  record.app_spec.components.resize(component_count);
  for (auto& component : record.app_spec.components) {
    in >> component.name;
  }

  expect(in, "edges");
  std::size_t edge_count = 0;
  in >> edge_count;
  record.app_spec.edges.resize(edge_count);
  for (auto& edge : record.app_spec.edges) {
    in >> edge.from >> edge.to >> edge.weight >> edge.delay_sec;
  }

  expect(in, "violation");
  in >> token;
  if (token != "none") record.violation_time = std::stoll(token);

  expect(in, "faults");
  std::size_t fault_count = 0;
  in >> fault_count;
  record.faults.resize(fault_count);
  for (auto& fault : record.faults) {
    std::string type_name;
    std::size_t target_count = 0;
    in >> type_name >> fault.start_time >> fault.intensity >> target_count;
    // Linear scan over the small enum.
    for (int t = 0; t <= static_cast<int>(faults::FaultType::SharedSlowdown);
         ++t) {
      if (faults::faultTypeName(static_cast<faults::FaultType>(t)) ==
          type_name) {
        fault.type = static_cast<faults::FaultType>(t);
      }
    }
    fault.targets.resize(target_count);
    for (ComponentId& target : fault.targets) in >> target;
  }

  expect(in, "ground_truth");
  std::size_t truth_count = 0;
  in >> truth_count;
  record.ground_truth.resize(truth_count);
  for (ComponentId& id : record.ground_truth) in >> id;

  expect(in, "metrics");
  std::size_t series_count = 0;
  in >> series_count;
  record.metrics.reserve(series_count);
  for (std::size_t s = 0; s < series_count; ++s) {
    TimeSec start = 0;
    std::size_t samples = 0;
    in >> start >> samples;
    MetricSeries series(start);
    std::array<std::vector<double>, kMetricCount> columns;
    for (auto& column : columns) {
      column.resize(samples);
      for (double& value : column) value = readFiniteValue(in, "metric");
    }
    for (std::size_t i = 0; i < samples; ++i) {
      std::array<double, kMetricCount> sample{};
      for (std::size_t m = 0; m < kMetricCount; ++m) sample[m] = columns[m][i];
      series.append(sample);
    }
    record.metrics.push_back(std::move(series));
  }

  expect(in, "edge_traffic");
  std::size_t traffic_count = 0;
  in >> traffic_count;
  record.edge_traffic.resize(traffic_count);
  for (auto& traffic : record.edge_traffic) {
    std::size_t samples = 0;
    in >> samples;
    traffic.resize(samples);
    for (double& value : traffic) {
      value = readFiniteValue(in, "edge_traffic");
    }
  }

  if (!in) throw std::runtime_error("record parse error: truncated file");
  return record;
}

RunRecord loadRecord(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open record file: " + path);
  return loadRecord(in);
}

}  // namespace fchain::sim
