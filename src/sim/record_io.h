// Run-record persistence.
//
// A RunRecord is exactly what a black-box monitoring deployment would have
// logged: component names and wiring, the 1 Hz metric samples, the SLO
// violation time, per-edge traffic counters — plus, for scored experiments,
// the injected faults and ground truth. This module saves/loads that
// observable record in a self-describing line-oriented text format, so
// incidents can be archived, shipped across machines, and re-diagnosed
// (simulator-internal calibration is deliberately *not* persisted: FChain
// never sees it either).
#pragma once

#include <iosfwd>
#include <string>

#include "sim/simulator.h"

namespace fchain::sim {

/// Writes the record; throws std::runtime_error when the file cannot be
/// created.
void saveRecord(const std::string& path, const RunRecord& record);
void saveRecord(std::ostream& out, const RunRecord& record);

/// Reads a record previously written by saveRecord; throws
/// std::runtime_error on missing files or malformed content.
RunRecord loadRecord(const std::string& path);
RunRecord loadRecord(std::istream& in);

}  // namespace fchain::sim
