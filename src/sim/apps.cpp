#include "sim/apps.h"

#include <stdexcept>

#include "sim/mesh.h"
#include "trace/workload_trace.h"

namespace fchain::sim {

std::string_view appKindName(AppKind kind) {
  switch (kind) {
    case AppKind::Rubis:
      return "RUBiS";
    case AppKind::SystemS:
      return "SystemS";
    case AppKind::Hadoop:
      return "Hadoop";
    case AppKind::Mesh:
      return "Mesh";
  }
  return "unknown";
}

ApplicationSpec makeRubisSpec() {
  ApplicationSpec spec;
  spec.name = "rubis";
  spec.wire_style = WireStyle::RequestReply;

  ComponentSpec web;
  web.name = "web";
  web.cpu_demand = 0.0015;
  web.net_in_per_unit = 2.0;
  web.net_out_per_unit = 6.0;  // serves static content + forwards
  web.mem_base = 420.0;
  web.mem_limit = 1500.0;
  // The front tier's accept queue holds many seconds of requests, so an
  // overload (workload surge, saturated app tier) shows up as queueing
  // latency rather than silent drops at the NIC.
  web.buffer_limit = 3000.0;
  web.noise_level = 0.05;

  ComponentSpec app1;
  app1.name = "app1";
  // EJB request handling is the costly tier; session state lives in RAM, so
  // a backed-up app server also shows a clear memory increase.
  app1.cpu_demand = 0.0075;
  app1.mem_per_queued = 0.2;
  app1.net_in_per_unit = 3.0;
  app1.net_out_per_unit = 3.0;
  app1.mem_base = 650.0;
  app1.mem_limit = 1500.0;
  app1.buffer_limit = 300.0;
  app1.noise_level = 0.05;

  ComponentSpec app2 = app1;
  app2.name = "app2";

  ComponentSpec db;
  db.name = "db";
  db.cpu_demand = 0.0025;
  db.net_in_per_unit = 3.0;
  db.net_out_per_unit = 4.0;
  db.disk_read_per_unit = 24.0;
  db.disk_write_per_unit = 8.0;
  db.disk_capacity = 60000.0;
  db.mem_base = 700.0;
  db.mem_limit = 1500.0;
  db.buffer_limit = 300.0;
  db.noise_level = 0.05;

  spec.components = {web, app1, app2, db};
  spec.edges = {
      {0, 1, 0.5},  // web -> app1
      {0, 2, 0.5},  // web -> app2
      {1, 3, 1.0},  // app1 -> db
      {2, 3, 1.0},  // app2 -> db
  };
  spec.reference_path = {0, 1, 3};
  return spec;
}

ApplicationSpec makeSystemSSpec() {
  ApplicationSpec spec;
  spec.name = "systems";
  spec.wire_style = WireStyle::Streaming;

  auto pe = [](std::string name) {
    ComponentSpec c;
    c.name = std::move(name);
    c.cpu_demand = 0.004;
    c.net_in_per_unit = 1.5;
    c.net_out_per_unit = 1.5;
    c.mem_base = 520.0;
    c.mem_limit = 1400.0;
    // Stream operators keep small input windows: back-pressure is fast
    // ("the fault propagates very quickly", paper §III-B on Bottleneck).
    c.buffer_limit = 120.0;
    // Tuple windows live in RAM, so a growing input queue is visible as a
    // clear memory increase on the back-pressured PE.
    c.mem_per_queued = 0.5;
    c.noise_level = 0.06;
    return c;
  };

  ComponentSpec pe1 = pe("PE1");
  pe1.cpu_demand = 0.003;  // source/ingest is cheap
  ComponentSpec pe2 = pe("PE2");
  ComponentSpec pe3 = pe("PE3");
  ComponentSpec pe4 = pe("PE4");
  ComponentSpec pe5 = pe("PE5");
  ComponentSpec pe6 = pe("PE6");
  pe6.join_inputs = true;  // joins PE2 and PE3 streams in lockstep
  ComponentSpec pe7 = pe("PE7");

  spec.components = {pe1, pe2, pe3, pe4, pe5, pe6, pe7};
  spec.edges = {
      {0, 1, 0.4},  // PE1 -> PE2
      {0, 2, 0.4},  // PE1 -> PE3
      {0, 3, 0.2},  // PE1 -> PE4
      {1, 5, 1.0},  // PE2 -> PE6
      {2, 5, 1.0},  // PE3 -> PE6
      {3, 4, 1.0},  // PE4 -> PE5
      {5, 6, 1.0},  // PE6 -> PE7
      {4, 6, 1.0},  // PE5 -> PE7
  };
  spec.reference_path = {0, 2, 5, 6};  // PE1 -> PE3 -> PE6 -> PE7
  return spec;
}

ApplicationSpec makeHadoopSpec() {
  ApplicationSpec spec;
  spec.name = "hadoop";
  spec.wire_style = WireStyle::RequestReply;
  spec.batch = true;

  // Three map nodes sort 12 GB: each handles 4 GB in ~300 KB units
  // (~13,400 units) at up to ~100 units/s, so the job spans the whole run.
  auto map = [](std::string name) {
    ComponentSpec c;
    c.name = std::move(name);
    c.cpu_demand = 0.0055;
    c.disk_read_per_unit = 300.0;
    c.disk_write_per_unit = 90.0;  // spill files
    c.disk_capacity = 52000.0;
    c.net_out_per_unit = 280.0;  // shuffle
    c.mem_base = 900.0;
    c.mem_limit = 1600.0;
    c.buffer_limit = 400.0;
    c.self_work_total = 360000.0;  // effectively inexhaustible within a run
    c.self_work_rate = 100.0;
    c.noise_level = 0.10;          // Hadoop is "much more dynamic"
    c.spike_probability = 0.05;    // periodic spill bursts
    c.spike_magnitude = 0.9;
    return c;
  };
  auto reduce = [](std::string name) {
    ComponentSpec c;
    c.name = std::move(name);
    // Reducers buffer shuffled data and drain it in periodic merge bursts
    // (6 s of work every 20 s), which is what makes reduce-node metrics so
    // bursty in practice (paper Fig. 3).
    c.cpu_demand = 0.009;
    c.cpu_capacity = 1.8;
    c.burst_period_sec = 20;
    c.burst_len_sec = 6;
    c.net_in_per_unit = 280.0;
    c.disk_write_per_unit = 260.0;
    c.disk_capacity = 55000.0;
    c.mem_base = 800.0;
    c.mem_limit = 1600.0;
    c.buffer_limit = 2500.0;
    c.mem_per_queued = 0.01;
    c.noise_level = 0.10;
    c.spike_probability = 0.04;
    c.spike_magnitude = 0.7;
    return c;
  };

  spec.components = {map("map1"),    map("map2"),    map("map3"),
                     reduce("red1"), reduce("red2"), reduce("red3"),
                     reduce("red4"), reduce("red5"), reduce("red6")};
  for (ComponentId m = 0; m < 3; ++m) {
    for (ComponentId r = 3; r < 9; ++r) {
      // Shuffle fetches are batched: reducers see map-side changes with a
      // multi-second lag.
      spec.edges.push_back({m, r, 1.0 / 6.0, /*delay_sec=*/8});
    }
  }
  spec.reference_path = {0, 3};
  return spec;
}

ApplicationSpec makeAppSpec(AppKind kind) {
  switch (kind) {
    case AppKind::Rubis:
      return makeRubisSpec();
    case AppKind::SystemS:
      return makeSystemSSpec();
    case AppKind::Hadoop:
      return makeHadoopSpec();
    case AppKind::Mesh:
      return makeMicroMeshSpec(MeshConfig{});
  }
  throw std::invalid_argument("unknown AppKind");
}

double sloLatencyThreshold(AppKind kind) {
  switch (kind) {
    case AppKind::Rubis:
      return 0.100;  // 100 ms average response time
    case AppKind::SystemS:
      return 0.020;  // 20 ms per-tuple processing time
    case AppKind::Hadoop:
      return 0.0;  // progress-based SLO instead
    case AppKind::Mesh:
      return meshSloLatencyThreshold(MeshConfig{});
  }
  throw std::invalid_argument("unknown AppKind");
}

Application makeApplication(AppKind kind, std::size_t seconds, Rng& rng) {
  if (kind == AppKind::Mesh) {
    return makeMicroMesh(MeshConfig{}, seconds, rng);
  }
  Application app(makeAppSpec(kind), rng.next());
  switch (kind) {
    case AppKind::Rubis:
      app.setWorkload(
          trace::generateDiurnalTrace(trace::nasaLikeConfig(), seconds, rng));
      break;
    case AppKind::SystemS:
      app.setWorkload(trace::generateDiurnalTrace(trace::clarknetLikeConfig(),
                                                  seconds, rng));
      break;
    case AppKind::Hadoop:
      break;  // batch job: work comes from the map-side reservoirs
    case AppKind::Mesh:
      break;  // handled above
  }
  return app;
}

}  // namespace fchain::sim
