// SLO monitors (paper §III-A).
//
// RUBiS: violation when average request response time exceeds 100 ms;
// System S: when average per-tuple processing time exceeds 20 ms; Hadoop:
// when the job makes no progress for more than 30 seconds. The latency
// monitors require the violation to be *sustained* for a short interval —
// production detectors average over a monitoring window before alarming —
// which also gives fault propagation time to reach neighbour components
// before the look-back analysis starts, as in the paper's timelines (Fig. 5).
#pragma once

#include <cstddef>
#include <deque>
#include <optional>

#include "common/types.h"

namespace fchain::sim {

/// Latches the first time `latency > threshold` holds for `sustain`
/// consecutive seconds. A value exactly at the threshold is within the SLO
/// (the contract is "exceeds"), and a single in-SLO sample resets the
/// sustain streak.
class LatencySloMonitor {
 public:
  LatencySloMonitor(double threshold_sec, std::size_t sustain_sec)
      : threshold_(threshold_sec), sustain_(sustain_sec) {}

  /// Feeds one sample; returns the latched violation time, if any.
  std::optional<TimeSec> observe(TimeSec t, double latency_sec);

  std::optional<TimeSec> violationTime() const { return violation_; }

  double threshold() const { return threshold_; }

  /// Re-arms a latched monitor: clears the violation and the sustain streak
  /// so the next sustained violation latches afresh. The online monitoring
  /// runtime calls this once an incident has been handled and the signal
  /// has recovered.
  void reset() {
    above_ = 0;
    violation_.reset();
  }

 private:
  double threshold_;
  std::size_t sustain_;
  std::size_t above_ = 0;
  std::optional<TimeSec> violation_;
};

/// Latches the first time progress advances by less than `min_delta` over a
/// trailing `window` seconds (default 30, per the paper). The trailing-window
/// comparison tolerates burst-structured progress (reducers deliver progress
/// in periodic merge clumps). Arms only once the job has started making
/// progress.
class ProgressSloMonitor {
 public:
  explicit ProgressSloMonitor(std::size_t window_sec = 30,
                              double min_delta = 5e-4)
      : window_(window_sec), min_delta_(min_delta) {}

  std::optional<TimeSec> observe(TimeSec t, double progress);

  std::optional<TimeSec> violationTime() const { return violation_; }

  double minDelta() const { return min_delta_; }

  /// Re-arms a latched monitor. The trailing window restarts empty (the
  /// next violation needs a fresh window of stalled samples) but the job
  /// stays "started": re-arming mid-job must not wait for progress to leave
  /// zero again.
  void reset() {
    history_.clear();
    violation_.reset();
  }

 private:
  std::size_t window_;
  double min_delta_;
  /// Trailing progress samples; bounded at window_ + 1 entries — the online
  /// monitoring runtime keeps one of these alive for hours, so the history
  /// must not grow with job length.
  std::deque<double> history_;
  bool started_ = false;
  std::optional<TimeSec> violation_;
};

}  // namespace fchain::sim
