#include "sim/simulator.h"

namespace fchain::sim {

namespace {
Rng makeRng(const ScenarioConfig& config) { return Rng(config.seed); }

Application makeScenarioApp(const ScenarioConfig& config, Rng& rng) {
  if (config.kind == AppKind::Mesh) {
    return makeMicroMesh(config.mesh, config.duration_sec, rng);
  }
  return makeApplication(config.kind, config.duration_sec, rng);
}

double scenarioSloThreshold(const ScenarioConfig& config) {
  if (config.kind == AppKind::Mesh) {
    return meshSloLatencyThreshold(config.mesh);
  }
  return sloLatencyThreshold(config.kind);
}
}  // namespace

Simulation::Simulation(const ScenarioConfig& config)
    : config_(config), rng_(makeRng(config)),
      app_(makeScenarioApp(config, rng_)),
      injector_(config.faults),
      latency_slo_(scenarioSloThreshold(config), config.slo_sustain_sec),
      progress_slo_() {
  edge_traffic_.resize(app_.spec().edges.size());
  if (config_.workload_trace) {
    app_.setWorkloadProvider(
        [trace = config_.workload_trace](TimeSec t) {
          return trace->intensityAt(t);
        });
  }
}

void Simulation::step() {
  injector_.apply(app_, app_.now());
  app_.step();
  const TimeSec t = app_.now() - 1;  // time of the sample just produced
  if (batch()) {
    const double progress = app_.progress();
    progress_rate_ = progress - last_progress_;
    last_progress_ = progress;
    progress_slo_.observe(t, progress);
  } else {
    latency_slo_.observe(t, app_.latencySeconds());
  }
  for (std::size_t e = 0; e < edge_traffic_.size(); ++e) {
    edge_traffic_[e].push_back(app_.edgeTraffic()[e]);
  }
}

void Simulation::runUntil(TimeSec t) {
  while (app_.now() < t) step();
}

std::optional<TimeSec> Simulation::violationTime() const {
  return batch() ? progress_slo_.violationTime() : latency_slo_.violationTime();
}

double Simulation::sloSignal() const {
  return batch() ? -progress_rate_ : app_.latencySeconds();
}

RunRecord Simulation::record() const {
  RunRecord rec;
  rec.app_spec = app_.spec();
  rec.kind = config_.kind;
  for (ComponentId id = 0; id < app_.componentCount(); ++id) {
    rec.metrics.push_back(app_.metricsOf(id));
  }
  rec.violation_time = violationTime();
  rec.faults = injector_.specs();
  rec.ground_truth = groundTruth(injector_.specs());
  rec.edge_traffic = edge_traffic_;
  return rec;
}

ScenarioResult runScenario(const ScenarioConfig& config) {
  Simulation sim(config);
  ScenarioResult result;
  const auto duration = static_cast<TimeSec>(config.duration_sec);
  while (sim.now() < duration) {
    sim.step();
    if (sim.violationTime().has_value() &&
        !result.snapshot_at_violation.has_value()) {
      result.snapshot_at_violation = sim;  // copy at the violation tick
      break;
    }
  }
  // A little post-violation data so windows ending at tv are fully covered.
  if (result.snapshot_at_violation.has_value()) {
    sim.runUntil(sim.now() + static_cast<TimeSec>(config.post_violation_sec));
  }
  result.record = sim.record();
  return result;
}

}  // namespace fchain::sim
