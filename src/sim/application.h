// A distributed application: components wired by directed work-flow edges.
//
// The engine advances in 1-second ticks. Within a tick every component
// drains its input queues subject to (a) its effective CPU/disk capacity,
// (b) downstream buffer space — the *back-pressure* mechanism the paper's
// fault propagation depends on — and (c) join semantics for System-S-style
// operators that must consume their inputs in lockstep (a stalled input
// therefore back-pressures the *other*, healthy input: exactly the
// PE3 -> PE6 -> PE2 propagation of Fig. 2). Emitted work becomes visible to
// the downstream component on the next tick, so anomalies propagate hop by
// hop with multi-second delays once queue buildup is included.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_series.h"
#include "common/types.h"
#include "sim/component.h"

namespace fchain::sim {

struct EdgeSpec {
  ComponentId from = 0;
  ComponentId to = 0;
  /// Fraction of `from`'s output routed onto this edge.
  double weight = 1.0;
  /// Transfer delay in whole seconds (>= 1): emitted work becomes visible to
  /// the receiver this many ticks later. RPC-style edges use 1; Hadoop's
  /// batched shuffle fetches use several seconds, which is what gives its
  /// fault propagation the multi-second lag the paper relies on.
  std::size_t delay_sec = 1;

  // --- Microservice-mesh edge semantics (sim/mesh.h). All default to the
  // --- inert values, so the legacy RUBiS/System-S/Hadoop specs behave (and
  // --- sample noise) exactly as before these fields existed.

  /// Fraction of calls served by a caller-side cache and never sent over the
  /// edge (0 = no cache).
  double cache_hit_ratio = 0.0;
  /// Smoothed pre-cache demand (units/s) the cache's working set can cover.
  /// Beyond the knee the effective hit ratio degrades inversely with demand
  /// — the hit-ratio dynamics that turn a load surge into a miss storm on
  /// the tier behind the cache. 0 keeps the ratio static.
  double cache_knee = 0.0;
  /// Bounded-retry RPC client: when the callee is under pressure the caller
  /// re-sends up to this many duplicates per call (0 = no retries, and the
  /// edge stays a closed-loop back-pressured link). A retrying edge is
  /// open-loop: the caller ignores downstream buffer space and overflow is
  /// shed at the receiver instead.
  int max_retries = 0;
  /// Destination queue-fill fraction at which client timeouts (and therefore
  /// retries) begin; duplication scales linearly up to max_retries at 100 %.
  double retry_threshold = 0.6;
  /// Client-side wait added to the path latency per retry in flight.
  double retry_backoff_sec = 0.0;
};

/// How the application exchanges data on the wire; decides whether black-box
/// dependency discovery can segment flows (request/reply) or not (streaming).
enum class WireStyle : std::uint8_t {
  RequestReply,  ///< bursty connections with idle gaps (RUBiS, Hadoop RPC)
  Streaming,     ///< gap-free continuous tuple streams (System S)
};

struct ApplicationSpec {
  std::string name;
  std::vector<ComponentSpec> components;
  std::vector<EdgeSpec> edges;
  WireStyle wire_style = WireStyle::RequestReply;
  /// Representative source->sink path used for the latency estimate.
  std::vector<ComponentId> reference_path;
  /// True for batch jobs (Hadoop): SLO is progress, not latency.
  bool batch = false;
};

class Application {
 public:
  Application(ApplicationSpec spec, std::uint64_t noise_seed);

  const ApplicationSpec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }
  std::size_t componentCount() const { return spec_.components.size(); }
  TimeSec now() const { return now_; }

  /// Sets the external arrival intensity trace (units/s, 1 Hz). Sources
  /// (no in-edges, no self work) share each tick's intensity equally.
  void setWorkload(std::vector<double> trace);

  /// Streams the arrival intensity from a callback instead of a prebuilt
  /// vector (trace-driven replay, sim/trace.h). When set, it overrides the
  /// setWorkload trace; the workload multiplier still applies.
  void setWorkloadProvider(std::function<double(TimeSec)> provider) {
    workload_provider_ = std::move(provider);
  }

  /// Multiplies the external workload (WorkloadSurge fault). Takes effect on
  /// the next tick.
  void setWorkloadMultiplier(double multiplier) {
    workload_multiplier_ = multiplier;
  }

  /// Advances one second: moves work, applies faults' dynamics, records
  /// noisy metric samples.
  void step();

  /// Recorded (noisy) metrics of one component.
  const MetricSeries& metricsOf(ComponentId id) const {
    return metrics_[id];
  }

  /// Mutable fault state for the injector / validator.
  FaultState& faultStateOf(ComponentId id) { return states_[id].fault; }
  const ComponentState& stateOf(ComponentId id) const { return states_[id]; }

  /// Re-routes traffic (OffloadBug / LBBug). Unknown edges are ignored.
  void setEdgeWeight(ComponentId from, ComponentId to, double weight);

  /// Current end-to-end latency estimate in seconds (reference path).
  double latencySeconds() const { return latency_; }

  /// Batch progress in [0, 1]; 1 when every self-work reservoir is drained
  /// and in-flight work completed.
  double progress() const;

  /// Work units carried by each edge this tick (for the packet trace layer).
  const std::vector<double>& edgeTraffic() const { return edge_traffic_; }

  /// Per-edge retry amplification applied this tick (1.0 = no retries). The
  /// mesh property suite pins the bound factor <= 1 + max_retries.
  const std::vector<double>& edgeRetryFactors() const {
    return edge_retry_factor_;
  }

  /// Looks up a component id by name; kNoComponent when absent.
  ComponentId findComponent(std::string_view name) const;

 private:
  double capacityThroughput(ComponentId id) const;

  ApplicationSpec spec_;
  std::vector<ComponentState> states_;
  std::vector<MetricSeries> metrics_;

  // Topology indexes.
  std::vector<std::vector<std::size_t>> in_edges_;   // component -> edge idxs
  std::vector<std::vector<std::size_t>> out_edges_;  // component -> edge idxs
  std::vector<ComponentId> sources_;
  std::vector<ComponentId> topo_order_;
  std::vector<double> path_latency_;  // DP scratch for the latency estimate

  // Workload.
  std::vector<double> workload_;
  std::function<double(TimeSec)> workload_provider_;
  double workload_multiplier_ = 1.0;

  // Per-tick scratch.
  std::vector<double> edge_traffic_;
  /// EMA of each caching edge's pre-cache routed demand (hit-ratio dynamics).
  std::vector<double> edge_cache_demand_;
  /// Retry amplification applied to each edge this tick (1.0 when idle).
  std::vector<double> edge_retry_factor_;
  /// Per-edge delivery pipeline: slot 0 is delivered this tick, the last
  /// slot receives this tick's emissions (length == edge delay).
  std::vector<std::vector<double>> staged_;

  // Noise: AR(1) state per component per metric, plus spike timers.
  std::vector<std::array<double, kMetricCount>> noise_ar_;
  std::vector<int> spike_ticks_left_;
  Rng rng_;

  TimeSec now_ = 0;
  double latency_ = 0.0;
  double completed_total_ = 0.0;
  double self_work_total_ = 0.0;
};

}  // namespace fchain::sim
