#include "sim/injector.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "common/rng.h"

namespace fchain::sim {

namespace {

using faults::FaultSpec;
using faults::FaultType;

/// Finds the unique component with out-edges to both targets (the RUBiS web
/// tier for the two load-balancing bugs).
ComponentId commonUpstream(const Application& app, ComponentId a,
                           ComponentId b) {
  const auto& edges = app.spec().edges;
  for (std::size_t i = 0; i < app.componentCount(); ++i) {
    bool to_a = false, to_b = false;
    for (const EdgeSpec& e : edges) {
      if (e.from != i) continue;
      to_a = to_a || e.to == a;
      to_b = to_b || e.to == b;
    }
    if (to_a && to_b) return static_cast<ComponentId>(i);
  }
  return kNoComponent;
}

double edgeWeight(const Application& app, ComponentId from, ComponentId to) {
  for (const EdgeSpec& e : app.spec().edges) {
    if (e.from == from && e.to == to) return e.weight;
  }
  return 0.0;
}

void inject(Application& app, const FaultSpec& spec) {
  switch (spec.type) {
    case FaultType::MemLeak:
      for (ComponentId id : spec.targets) {
        app.faultStateOf(id).leak_rate_mb_s = 25.0 * spec.intensity;
      }
      break;
    case FaultType::CpuHog:
      for (ComponentId id : spec.targets) {
        // The hog's threads take a fair-scheduler share inside the VM.
        app.faultStateOf(id).hog_share =
            std::min(0.9, 0.5 * spec.intensity);
      }
      break;
    case FaultType::InfiniteLoop:
      for (ComponentId id : spec.targets) {
        app.faultStateOf(id).infinite_loop = true;
      }
      break;
    case FaultType::NetHog:
      for (ComponentId id : spec.targets) {
        FaultState& fault = app.faultStateOf(id);
        // Strong flood: absorbing it consumes nearly a full core, so the SLO
        // trips promptly at any point in the diurnal workload cycle. httperf
        // ramps its connection count up over ~10 s, so downstream starvation
        // lags the flood onset by several seconds (the paper's observed
        // multi-second propagation delays).
        fault.extra_net_in_target = 40000.0 * spec.intensity;
        fault.extra_net_in_ramp = 2000.0 * spec.intensity;
        fault.net_hog_cpu_per_kb = 2.4e-5;
      }
      break;
    case FaultType::DiskHog:
      for (ComponentId id : spec.targets) {
        FaultState& fault = app.faultStateOf(id);
        // The hog saturates the disk queue as soon as it starts (a visible
        // initial dent), then keeps degrading slowly as its working set
        // grows — the paper's slow-manifestation fault that needs the
        // longer 500 s look-back window before the SLO finally trips.
        fault.disk_contention = std::min(0.5 * spec.intensity, 0.9);
        fault.disk_contention_target = std::min(0.97, 0.97 * spec.intensity);
        fault.disk_contention_ramp = 0.002;
      }
      break;
    case FaultType::Bottleneck:
      for (ComponentId id : spec.targets) {
        app.faultStateOf(id).cpu_cap_factor =
            std::max(0.06, 0.12 / spec.intensity);
      }
      break;
    case FaultType::OffloadBug:
    case FaultType::LBBug: {
      if (spec.targets.size() != 2) {
        throw std::invalid_argument("load-balance bug needs two targets");
      }
      const ComponentId a = spec.targets[0];
      const ComponentId b = spec.targets[1];
      const ComponentId up = commonUpstream(app, a, b);
      if (up == kNoComponent) {
        throw std::invalid_argument("no common upstream for LB bug targets");
      }
      const double total = edgeWeight(app, up, a) + edgeWeight(app, up, b);
      // OffloadBug: the remote lookup binds locally, so *all* of the shared
      // load lands on target a. LBBug: heavily skewed dispatch.
      const double to_a =
          spec.type == FaultType::OffloadBug ? total : 0.95 * total;
      app.setEdgeWeight(up, a, to_a);
      app.setEdgeWeight(up, b, total - to_a);
      break;
    }
    case FaultType::WorkloadSurge:
      // A flash-crowd-scale surge: enough to saturate the app tier at any
      // point of the diurnal cycle.
      app.setWorkloadMultiplier(3.0 * spec.intensity);
      break;
    case FaultType::CallLatency:
      for (ComponentId id : spec.targets) {
        const ComponentSpec& cspec = app.spec().components[id];
        FaultState& fault = app.faultStateOf(id);
        // A degraded RPC stack (retransmitting NIC, slow DNS, saturated
        // connection pool) adds a fixed delay to every outbound call. The
        // caller's finite RPC-thread pool then caps throughput at
        // slots/latency, so the cap tightens as intensity grows while the
        // per-call delay pushes directly on the latency SLO.
        fault.call_latency_extra_sec = 0.15 * spec.intensity;
        const double nominal =
            cspec.cpu_capacity / std::max(1e-9, cspec.cpu_demand);
        fault.call_slots = 0.0525 * nominal;
      }
      break;
    case FaultType::CallFailure:
      for (ComponentId id : spec.targets) {
        // A flaky downstream link: this fraction of the caller's outbound
        // calls fail and are retried, inflating effective service cost by
        // 1/(1-rate) until queues build at the caller.
        app.faultStateOf(id).call_failure_rate =
            std::min(0.9, 0.35 * spec.intensity);
      }
      break;
    case FaultType::SharedSlowdown:
      // A shared backing store (NFS) degrades: every component's disk slows
      // at once — instantly, the way a failing-over filer behaves — so the
      // abnormal onsets cluster tightly across the whole application and
      // each component sees one crisp step.
      for (ComponentId id = 0; id < app.componentCount(); ++id) {
        FaultState& fault = app.faultStateOf(id);
        fault.disk_contention = std::min(0.97 * spec.intensity, 0.99);
        fault.disk_contention_target = fault.disk_contention;
      }
      break;
  }
}

}  // namespace

void FaultInjector::apply(Application& app, TimeSec now) {
  fired_.resize(specs_.size(), false);
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (!fired_[i] && specs_[i].start_time == now) {
      inject(app, specs_[i]);
      fired_[i] = true;
    }
  }
}

std::string_view telemetryFaultTypeName(TelemetryFaultType type) {
  switch (type) {
    case TelemetryFaultType::SampleDropBurst: return "sample_drop_burst";
    case TelemetryFaultType::ValueCorruption: return "value_corruption";
    case TelemetryFaultType::SlaveOutage: return "slave_outage";
  }
  return "unknown";
}

namespace {

bool windowActive(const TelemetryFaultSpec& spec, TimeSec now) {
  if (now < spec.start_time) return false;
  return spec.duration_sec == 0 || now < spec.start_time + spec.duration_sec;
}

bool targetsComponent(const TelemetryFaultSpec& spec, ComponentId id) {
  if (spec.targets.empty()) return true;
  return std::find(spec.targets.begin(), spec.targets.end(), id) !=
         spec.targets.end();
}

/// Stateless per-(spec, component, second) coin flip.
bool roll(const TelemetryFaultSpec& spec, ComponentId id, TimeSec now,
          std::uint64_t salt) {
  if (spec.rate >= 1.0) return true;
  if (spec.rate <= 0.0) return false;
  Rng rng(mixSeed(spec.seed ^ salt, id, static_cast<std::uint64_t>(now)));
  return rng.chance(spec.rate);
}

}  // namespace

bool TelemetryFaultInjector::sampleDropped(ComponentId id,
                                           TimeSec now) const {
  for (const TelemetryFaultSpec& spec : specs_) {
    if (spec.type != TelemetryFaultType::SampleDropBurst) continue;
    if (!windowActive(spec, now) || !targetsComponent(spec, id)) continue;
    if (roll(spec, id, now, 0x5a3cull)) return true;
  }
  return false;
}

bool TelemetryFaultInjector::corruptSample(
    ComponentId id, TimeSec now,
    std::array<double, kMetricCount>& sample) const {
  bool corrupted = false;
  for (const TelemetryFaultSpec& spec : specs_) {
    if (spec.type != TelemetryFaultType::ValueCorruption) continue;
    if (!windowActive(spec, now) || !targetsComponent(spec, id)) continue;
    Rng rng(mixSeed(spec.seed ^ 0xc0de11ull, id,
                    static_cast<std::uint64_t>(now)));
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      if (!rng.chance(spec.rate)) continue;
      // The classic garbage a broken exporter emits: NaN, +-inf, or a
      // wildly out-of-range reading (counter wraparound, unit confusion).
      switch (rng.below(4)) {
        case 0: sample[m] = std::numeric_limits<double>::quiet_NaN(); break;
        case 1: sample[m] = std::numeric_limits<double>::infinity(); break;
        case 2: sample[m] = -std::numeric_limits<double>::infinity(); break;
        default: sample[m] *= 1e9; break;
      }
      corrupted = true;
    }
  }
  return corrupted;
}

bool TelemetryFaultInjector::slaveDown(HostId host, TimeSec now) const {
  for (const TelemetryFaultSpec& spec : specs_) {
    if (spec.type != TelemetryFaultType::SlaveOutage) continue;
    if (!windowActive(spec, now)) continue;
    if (spec.hosts.empty() || std::find(spec.hosts.begin(), spec.hosts.end(),
                                        host) != spec.hosts.end()) {
      return true;
    }
  }
  return false;
}

bool CrashInjector::crashesAt(HostId host, TimeSec now) const {
  for (const CrashSpec& spec : specs_) {
    if (spec.host == host && spec.crash_time == now) return true;
  }
  return false;
}

bool CrashInjector::restartsAt(HostId host, TimeSec now) const {
  for (const CrashSpec& spec : specs_) {
    if (spec.host == host && spec.restart_time != 0 &&
        spec.restart_time == now) {
      return true;
    }
  }
  return false;
}

bool CrashInjector::down(HostId host, TimeSec now) const {
  for (const CrashSpec& spec : specs_) {
    if (spec.host != host || now < spec.crash_time) continue;
    if (spec.restart_time == 0 || now < spec.restart_time) return true;
  }
  return false;
}

std::vector<ComponentId> groundTruth(
    const std::vector<faults::FaultSpec>& specs) {
  std::vector<ComponentId> truth;
  for (const auto& spec : specs) {
    for (ComponentId id : spec.targets) {
      if (std::find(truth.begin(), truth.end(), id) == truth.end()) {
        truth.push_back(id);
      }
    }
  }
  std::sort(truth.begin(), truth.end());
  return truth;
}

}  // namespace fchain::sim
