#include "sim/mesh.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/workload_trace.h"

namespace fchain::sim {

namespace {

constexpr double kEps = 1e-9;
/// Sustained workload peak over the mean (diurnal crest plus flash-crowd
/// headroom); capacity calibration targets `peak_utilization` here.
constexpr double kPeakFactor = 2.0;
/// SLO threshold = this multiple of the healthy reference-path service time.
constexpr double kSloFactor = 6.0;

/// Services per tier: a narrow entry tier of gateways, even fan-out middle
/// tiers, and a data tier of stores. Sized so that every tier is coverable
/// from the previous one within the fan-out bound.
std::vector<std::size_t> tierWidths(const MeshConfig& config) {
  if (config.tiers < 3) {
    throw std::invalid_argument("MeshConfig needs >= 3 tiers");
  }
  const std::size_t middle_tiers = config.tiers - 2;
  const auto entry = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(
             static_cast<double>(config.services) * 0.08)));
  const auto data = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::lround(
             static_cast<double>(config.services) * 0.10)));
  if (config.services < entry + data + 2 * middle_tiers) {
    throw std::invalid_argument("MeshConfig has too few services for tiers");
  }
  std::vector<std::size_t> widths;
  widths.push_back(entry);
  const std::size_t middle_total = config.services - entry - data;
  for (std::size_t t = 0; t < middle_tiers; ++t) {
    const std::size_t share = middle_total / middle_tiers +
                              (t < middle_total % middle_tiers ? 1 : 0);
    widths.push_back(share);
  }
  widths.push_back(data);
  for (std::size_t t = 0; t + 1 < widths.size(); ++t) {
    if (widths[t + 1] > widths[t] * config.max_fanout) {
      throw std::invalid_argument(
          "MeshConfig fan-out bound cannot cover the next tier");
    }
  }
  return widths;
}

}  // namespace

MeshConfig meshConfigFor(std::size_t services, std::uint64_t seed) {
  MeshConfig config;
  config.services = services;
  config.seed = seed;
  // Small meshes shed depth so every tier keeps >= 2 services.
  while (config.tiers > 3 && services < 4 + 3 * (config.tiers - 2)) {
    --config.tiers;
  }
  return config;
}

ApplicationSpec makeMicroMeshSpec(const MeshConfig& config) {
  if (config.min_fanout == 0 || config.max_fanout < config.min_fanout) {
    throw std::invalid_argument("MeshConfig fan-out bounds are invalid");
  }
  const std::vector<std::size_t> widths = tierWidths(config);
  Rng rng(mixSeed(config.seed, 0x3e5a11ull));

  // Global service ids per tier.
  std::vector<std::vector<ComponentId>> tier_ids(widths.size());
  std::vector<std::size_t> tier_of;
  ComponentId next = 0;
  for (std::size_t t = 0; t < widths.size(); ++t) {
    for (std::size_t i = 0; i < widths[t]; ++i) {
      tier_ids[t].push_back(next++);
      tier_of.push_back(t);
    }
  }

  // Adjacency per parent (insertion order is deterministic).
  std::vector<std::vector<ComponentId>> children(config.services);
  for (std::size_t t = 0; t + 1 < widths.size(); ++t) {
    const auto& parents = tier_ids[t];
    const auto& kids = tier_ids[t + 1];
    // Coverage first: a rotated round-robin gives every child exactly one
    // parent while keeping parent degrees within ceil(kids/parents), which
    // the width feasibility check bounds by max_fanout.
    const std::size_t offset = rng.below(parents.size());
    for (std::size_t c = 0; c < kids.size(); ++c) {
      children[parents[(offset + c) % parents.size()]].push_back(kids[c]);
    }
    // Then top up every parent to its drawn fan-out with distinct extra
    // children (bounded rejection sampling, deterministic from the rng).
    for (const ComponentId parent : parents) {
      const std::size_t hi = std::min(config.max_fanout, kids.size());
      const std::size_t lo = std::min(config.min_fanout, hi);
      const auto fanout = static_cast<std::size_t>(
          rng.intIn(static_cast<std::int64_t>(lo),
                    static_cast<std::int64_t>(hi)));
      auto& mine = children[parent];
      for (std::size_t attempt = 0;
           mine.size() < fanout && attempt < 8 * kids.size(); ++attempt) {
        const ComponentId pick = kids[rng.below(kids.size())];
        if (std::find(mine.begin(), mine.end(), pick) == mine.end()) {
          mine.push_back(pick);
        }
      }
    }
  }

  ApplicationSpec spec;
  spec.name = "mesh" + std::to_string(config.services);
  spec.wire_style = WireStyle::RequestReply;

  // Expected mean load per service (units/s), propagated tier by tier. Only
  // cache edges (into the data tier) attenuate traffic; retries are idle at
  // healthy pressure.
  std::vector<double> load(config.services, 0.0);
  for (const ComponentId gw : tier_ids.front()) {
    load[gw] =
        config.base_users_per_sec / static_cast<double>(widths.front());
  }
  const std::size_t data_tier = widths.size() - 1;
  for (std::size_t t = 0; t + 1 < widths.size(); ++t) {
    for (const ComponentId parent : tier_ids[t]) {
      const double weight =
          1.0 / static_cast<double>(std::max<std::size_t>(
                    1, children[parent].size()));
      const double hit = (t + 1 == data_tier) ? config.cache_hit_ratio : 0.0;
      for (const ComponentId child : children[parent]) {
        load[child] += load[parent] * weight * (1.0 - hit);
      }
    }
  }

  // Components, calibrated from the propagated load.
  for (ComponentId id = 0; id < static_cast<ComponentId>(config.services);
       ++id) {
    const std::size_t t = tier_of[id];
    ComponentSpec c;
    const std::size_t index_in_tier = static_cast<std::size_t>(
        std::find(tier_ids[t].begin(), tier_ids[t].end(), id) -
        tier_ids[t].begin());
    if (t == 0) {
      c.name = "gw" + std::to_string(index_in_tier);
    } else if (t == data_tier) {
      c.name = "db" + std::to_string(index_in_tier);
    } else {
      c.name = "t" + std::to_string(t);
      c.name += "s" + std::to_string(index_in_tier);
    }
    const double peak_load = std::max(load[id] * kPeakFactor, kEps);
    c.cpu_capacity = 1.0;
    c.cpu_demand =
        std::clamp(config.peak_utilization / peak_load, 0.0002, 0.012);
    c.mem_base = 450.0 + 10.0 * static_cast<double>(rng.below(12));
    c.mem_limit = 1500.0;
    c.noise_level = 0.05;
    c.net_in_per_unit = 2.0;
    c.net_out_per_unit = 2.0;
    if (t == 0) {
      // The gateway's accept queue holds many seconds of requests so an
      // overload shows up as queueing latency rather than silent NIC drops.
      c.buffer_limit = std::max(200.0, load[id] * 12.0);
      c.mem_per_queued = 0.05;
    } else {
      c.buffer_limit = std::max(60.0, load[id] * 6.0);
      c.mem_per_queued = 0.15;  // request state in RAM: backlog is visible
    }
    if (t == data_tier) {
      c.disk_read_per_unit = 18.0;
      c.disk_write_per_unit = 6.0;
      c.disk_capacity =
          std::max(25000.0, peak_load * 24.0 / config.peak_utilization);
    }
    spec.components.push_back(std::move(c));
  }

  // Edges: per-caller weights split the call volume evenly; the data-tier
  // edges carry the cache, and every edge is a bounded-retry RPC client.
  for (std::size_t t = 0; t + 1 < widths.size(); ++t) {
    for (const ComponentId parent : tier_ids[t]) {
      const double weight =
          1.0 / static_cast<double>(std::max<std::size_t>(
                    1, children[parent].size()));
      for (const ComponentId child : children[parent]) {
        EdgeSpec e;
        e.from = parent;
        e.to = child;
        e.weight = weight;
        e.delay_sec = 1;
        if (t + 1 == data_tier && config.cache_hit_ratio > 0.0) {
          e.cache_hit_ratio = config.cache_hit_ratio;
          e.cache_knee = config.cache_headroom * load[parent] * weight;
        }
        e.max_retries = config.max_retries;
        e.retry_threshold = config.retry_threshold;
        e.retry_backoff_sec = config.retry_backoff_sec;
        spec.edges.push_back(e);
      }
    }
  }

  // Reference path: follow the heaviest-loaded child from the busiest
  // gateway down to the data tier.
  ComponentId cursor = tier_ids.front().front();
  for (const ComponentId gw : tier_ids.front()) {
    if (load[gw] > load[cursor]) cursor = gw;
  }
  spec.reference_path.push_back(cursor);
  while (!children[cursor].empty()) {
    ComponentId best = children[cursor].front();
    for (const ComponentId child : children[cursor]) {
      if (load[child] > load[best]) best = child;
    }
    spec.reference_path.push_back(best);
    cursor = best;
  }
  return spec;
}

double meshSloLatencyThreshold(const MeshConfig& config) {
  const ApplicationSpec spec = makeMicroMeshSpec(config);
  double healthy = 0.0;
  for (const ComponentId id : spec.reference_path) {
    healthy += spec.components[id].cpu_demand;
  }
  return std::max(0.08, kSloFactor * healthy);
}

Application makeMicroMesh(const MeshConfig& config, std::size_t seconds,
                          Rng& rng) {
  Application app(makeMicroMeshSpec(config), rng.next());
  trace::DiurnalTraceConfig workload;
  workload.base_rate = config.base_users_per_sec;
  workload.diurnal_amplitude = 0.5;
  workload.diurnal_period_sec = 7200.0;
  workload.secondary_amplitude = 0.12;
  workload.noise_level = 0.06;
  workload.flash_per_hour = 1.5;
  workload.flash_magnitude = 0.5;
  workload.flash_duration_sec = 45.0;
  workload.phase = 1.1;
  app.setWorkload(trace::generateDiurnalTrace(workload, seconds, rng));
  return app;
}

}  // namespace fchain::sim
