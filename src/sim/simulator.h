// Scenario driver: one benchmark application + one fault spec + one SLO
// monitor, advanced tick by tick. Simulation is a plain value type — the
// online validator copies the snapshot taken at SLO-violation time and runs
// what-if resource-scaling experiments forward on the copies, mirroring the
// paper's dynamic-resource-scaling validation.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "sim/apps.h"
#include "sim/injector.h"
#include "sim/mesh.h"
#include "sim/slo.h"
#include "sim/trace.h"

namespace fchain::sim {

struct ScenarioConfig {
  AppKind kind = AppKind::Rubis;
  std::vector<faults::FaultSpec> faults;
  std::uint64_t seed = 1;
  std::size_t duration_sec = 3600;
  /// Seconds the latency SLO must hold before alarming.
  std::size_t slo_sustain_sec = 30;
  /// Extra seconds simulated past the SLO violation so the analysis window
  /// has data up to (and slightly past) tv.
  std::size_t post_violation_sec = 5;
  /// Topology + calibration used when kind == AppKind::Mesh.
  MeshConfig mesh;
  /// Optional recorded workload: when set, external arrivals come from
  /// trace->intensityAt(t) instead of the app's generated workload vector.
  /// The rng stream is untouched (the default trace is still drawn, then
  /// overridden), so two runs differing only in this pointer are comparable
  /// trace-vs-trace — the replay identity tests depend on that.
  std::shared_ptr<const WorkloadTrace> workload_trace;
};

/// Everything a fault localizer may look at after a run, plus the ground
/// truth the evaluation scores against.
struct RunRecord {
  ApplicationSpec app_spec;
  AppKind kind = AppKind::Rubis;
  std::vector<MetricSeries> metrics;  // per component, 1 Hz, noisy
  std::optional<TimeSec> violation_time;
  std::vector<faults::FaultSpec> faults;
  std::vector<ComponentId> ground_truth;
  /// Per-edge work units per tick (drives the packet-trace layer).
  std::vector<std::vector<double>> edge_traffic;
};

class Simulation {
 public:
  Simulation(const ScenarioConfig& config);

  /// Advances one second (inject, step, monitor SLO, record edge traffic).
  void step();

  /// Runs until `t` (exclusive of further ticks once reached).
  void runUntil(TimeSec t);

  TimeSec now() const { return app_.now(); }
  Application& app() { return app_; }
  const Application& app() const { return app_; }
  AppKind kind() const { return config_.kind; }
  bool batch() const { return app_.spec().batch; }

  std::optional<TimeSec> violationTime() const;

  /// Instantaneous SLO health indicator: latency for latency SLOs, negated
  /// progress rate for the batch SLO. Lower is better.
  double sloSignal() const;

  const std::vector<std::vector<double>>& edgeTraffic() const {
    return edge_traffic_;
  }

  RunRecord record() const;

 private:
  ScenarioConfig config_;
  Rng rng_;
  Application app_;
  FaultInjector injector_;
  LatencySloMonitor latency_slo_;
  ProgressSloMonitor progress_slo_;
  std::vector<std::vector<double>> edge_traffic_;
  double last_progress_ = 0.0;
  double progress_rate_ = 0.0;
};

/// Result of a full scenario run: the record for offline analysis plus a
/// snapshot of the simulation at violation time for online validation.
struct ScenarioResult {
  RunRecord record;
  /// Present iff an SLO violation occurred; state as of the violation tick.
  std::optional<Simulation> snapshot_at_violation;
};

ScenarioResult runScenario(const ScenarioConfig& config);

}  // namespace fchain::sim
