// Streaming sample source: the simulator adapted to online consumption.
//
// The offline evaluation path runs a Simulation to completion and hands the
// finished RunRecord to `core::diagnoseIncident`. The online monitoring
// runtime (src/online) instead consumes telemetry one second at a time, as a
// production deployment would: this adapter advances the simulation tick by
// tick and emits each component's six metric samples plus the application's
// per-tick SLO signal (latency, or progress for batch jobs) to a caller-
// supplied sink.
//
// Component ids can be offset so several applications can stream into one
// monitor without id collisions — the monitor routes global ids, while the
// underlying simulation keeps its local 0..n-1 space. record() still returns
// the *local*-id record, which is exactly what the offline comparator
// (core::localizeRecord) consumes; callers shift the online result back by
// idOffset() when comparing.
#pragma once

#include <array>
#include <functional>

#include "sim/simulator.h"

namespace fchain::sim {

/// One component's metric samples for one tick, in global (offset) id space.
struct StreamSample {
  ComponentId component = kNoComponent;
  TimeSec t = 0;
  std::array<double, kMetricCount> values{};
};

/// The streamed application's SLO signal after one tick.
struct StreamTick {
  TimeSec t = 0;           ///< timestamp of the samples just emitted
  bool batch = false;      ///< true: `progress` is the SLO signal
  double latency_sec = 0;  ///< end-to-end latency estimate (latency apps)
  double progress = 0;     ///< job progress in [0, 1] (batch apps)
};

class StreamingSource {
 public:
  using SampleSink = std::function<void(const StreamSample&)>;

  explicit StreamingSource(const ScenarioConfig& config,
                           ComponentId id_offset = 0)
      : sim_(config), id_offset_(id_offset) {}

  std::size_t componentCount() const { return sim_.app().componentCount(); }
  ComponentId idOffset() const { return id_offset_; }

  /// Global (offset) component ids, ascending.
  std::vector<ComponentId> componentIds() const;

  TimeSec now() const { return sim_.now(); }
  bool batch() const { return sim_.batch(); }
  AppKind kind() const { return sim_.kind(); }
  const Simulation& simulation() const { return sim_; }

  /// Advances one second, emits one StreamSample per component to `sink`
  /// (ascending component order), and returns the tick's SLO signal.
  StreamTick step(const SampleSink& sink);

  /// Everything recorded so far (local component ids) — the offline
  /// comparator's input for the online-vs-offline equivalence check.
  RunRecord record() const { return sim_.record(); }

 private:
  Simulation sim_;
  ComponentId id_offset_;
};

}  // namespace fchain::sim
