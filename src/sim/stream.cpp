#include "sim/stream.h"

namespace fchain::sim {

std::vector<ComponentId> StreamingSource::componentIds() const {
  std::vector<ComponentId> ids;
  ids.reserve(componentCount());
  for (ComponentId id = 0; id < componentCount(); ++id) {
    ids.push_back(id_offset_ + id);
  }
  return ids;
}

StreamTick StreamingSource::step(const SampleSink& sink) {
  sim_.step();
  const TimeSec t = sim_.now() - 1;  // time of the samples just produced
  if (sink) {
    for (ComponentId id = 0; id < componentCount(); ++id) {
      StreamSample sample;
      sample.component = id_offset_ + id;
      sample.t = t;
      for (MetricKind kind : kAllMetrics) {
        sample.values[metricIndex(kind)] =
            sim_.app().metricsOf(id).of(kind).at(t);
      }
      sink(sample);
    }
  }
  StreamTick tick;
  tick.t = t;
  tick.batch = sim_.batch();
  tick.latency_sec = sim_.app().latencySeconds();
  tick.progress = sim_.app().progress();
  return tick;
}

}  // namespace fchain::sim
