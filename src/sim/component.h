// The guest-VM component model.
//
// FChain treats every guest VM as one black-box component. The simulator
// models a component as a queueing station: requests (or tuples, or Hadoop
// work units) queue per input edge, a CPU/disk-capacity-limited server
// drains them, and downstream buffer space gates emission (back-pressure).
// The six observable metrics are derived from the station's activity each
// tick, then perturbed by AR(1) noise in the Application so that normal
// operation has the realistic fluctuation FChain must see through.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "common/types.h"

namespace fchain::sim {

/// Static description of one component.
struct ComponentSpec {
  std::string name;

  // Capacity model.
  double cpu_capacity = 1.0;   ///< CPU-seconds available per second (cores)
  double cpu_demand = 0.004;   ///< CPU-seconds per work unit
  double disk_capacity = 40000.0;  ///< KB/s of disk bandwidth
  double mem_limit = 2048.0;   ///< MB before swap thrashing begins

  // Per-work-unit footprints (KB).
  double net_in_per_unit = 2.0;
  double net_out_per_unit = 2.0;
  double disk_read_per_unit = 0.0;
  double disk_write_per_unit = 0.0;

  // Memory model (MB).
  double mem_base = 500.0;
  double mem_per_queued = 0.05;

  // Queueing.
  double buffer_limit = 1500.0;  ///< per-input-edge queue cap (work units)
  bool join_inputs = false;      ///< System-S join: consume inputs in lockstep
  double amplification = 1.0;    ///< output units emitted per unit processed

  // Baseline activity independent of load.
  double background_cpu = 0.04;      ///< fraction of one core
  double background_disk_w = 40.0;   ///< KB/s (logging etc.)

  // Batch work source (Hadoop map tasks): > 0 makes the component generate
  // its own input from a finite reservoir instead of receiving it on edges.
  double self_work_total = 0.0;
  double self_work_rate = 0.0;  ///< max units/s pulled from the reservoir

  // Batch-burst processing (Hadoop reducers): the component buffers input
  // and drains it in periodic merge bursts of `burst_len_sec` every
  // `burst_period_sec` (0 = continuous processing). This produces the
  // strongly bursty reduce-node metrics of the paper's Fig. 3.
  std::size_t burst_period_sec = 0;
  std::size_t burst_len_sec = 0;

  // Relative per-metric noise level (Hadoop uses a high value).
  double noise_level = 0.03;
  // Probability per tick of a short activity spike (Hadoop spills).
  double spike_probability = 0.0;
  double spike_magnitude = 0.0;
};

/// Live fault state attached to one component (mutated by the injector).
struct FaultState {
  double leak_rate_mb_s = 0.0;     ///< MemLeak growth rate
  double leaked_mb = 0.0;          ///< accumulated leak
  /// Fraction of the fair scheduler share taken by a co-located CPU hog in
  /// the same VM: capacity shrinks by the share and every request is served
  /// that much slower (runqueue wait), so latency degrades even before
  /// throughput saturates.
  double hog_share = 0.0;
  double cpu_cap_factor = 1.0;     ///< Bottleneck cap multiplier
  bool infinite_loop = false;      ///< task spins; no useful work
  double extra_net_in_kbs = 0.0;       ///< current NetHog flood traffic
  double extra_net_in_target = 0.0;    ///< flood ramps toward this
  double extra_net_in_ramp = 0.0;      ///< KB/s gained per second
  double net_hog_cpu_per_kb = 0.0;     ///< CPU burnt absorbing the flood
  double disk_contention = 0.0;    ///< current fraction of disk bw stolen
  double disk_contention_target = 0.0;  ///< DiskHog ramps toward this
  double disk_contention_ramp = 0.0;    ///< fraction gained per second
  // Call-level faults (perturb the component's outbound RPC path, not a
  // resource metric). CallLatency: every outbound call gains
  // `call_latency_extra_sec` of RPC-stack delay; with only `call_slots`
  // concurrent outstanding calls, throughput is additionally capped at
  // slots/latency (blocked caller threads), so queues build at the caller
  // while downstream components starve. CallFailure: `call_failure_rate` of
  // the caller's outbound calls fail and are re-queued for retry — the unit
  // is processed again, so effective service cost per delivered unit grows
  // by 1/(1-rate).
  double call_latency_extra_sec = 0.0;
  double call_slots = 0.0;
  double call_failure_rate = 0.0;
  double scale_cpu = 1.0;          ///< online-validation CPU scaling
  double scale_mem = 1.0;          ///< online-validation memory scaling
  double scale_disk = 1.0;         ///< online-validation disk scaling
  /// Cores transiently stolen by co-located tenants on the same physical
  /// host (set every tick by the Cloud's interference model, not a fault).
  double interference_cpu = 0.0;
};

/// Dynamic state + per-tick accounting for one component.
struct ComponentState {
  /// One queue per input edge (index parallel to Application's in-edge list).
  std::vector<double> in_queues;
  /// Finite reservoir for self-sourcing components (Hadoop maps).
  double self_work_remaining = 0.0;

  FaultState fault;

  // Per-tick outputs (filled by Application::step).
  double processed = 0.0;
  double arrived = 0.0;
  double emitted = 0.0;
  double dropped = 0.0;
  /// Batch-burst components pull their input in periodic fetches; this is
  /// the amount fetched this tick (drives their bursty network-in metric).
  double fetched = 0.0;
  double fetch_backlog = 0.0;

  double totalQueue() const {
    double sum = 0.0;
    for (double q : in_queues) sum += q;
    return sum;
  }
};

/// Computes the effective CPU capacity (cores) under faults and validation
/// scaling, including swap-thrash degradation once memory exceeds the limit.
double effectiveCpuCapacity(const ComponentSpec& spec, const FaultState& fault,
                            double memory_mb);

/// Effective disk bandwidth (KB/s) under DiskHog contention and scaling.
double effectiveDiskCapacity(const ComponentSpec& spec,
                             const FaultState& fault);

/// Memory usage (MB) implied by the current queue and leak state.
double memoryUsage(const ComponentSpec& spec, const FaultState& fault,
                   double total_queue);

/// The noiseless per-tick metric sample implied by the tick accounting.
std::array<double, kMetricCount> baseMetrics(const ComponentSpec& spec,
                                             const ComponentState& state);

}  // namespace fchain::sim
