// The IaaS cloud layer: physical hosts, guest-VM placement, multi-tenant
// interference, and per-host clocks.
//
// The paper's testbed is NCSU's Virtual Computing Lab: dual-core Xeon hosts
// running Xen, with the three benchmark applications deployed *concurrently*
// on the same set of hosts to create realistic cross-tenant noise
// (§III-A). The Cloud reproduces that setting: applications are deployed
// side by side, components are placed round-robin onto hosts, and each host
// carries an AR(1)-wandering interference level that transiently steals CPU
// from every VM it hosts. Host clocks are NTP-synchronized with a bounded
// residual skew (the paper cites < 5 ms, far below the 1 Hz sampling grid
// and the multi-second anomaly propagation delays — which is why FChain's
// cross-host timestamp comparisons are safe).
#pragma once

#include <vector>

#include "common/rng.h"
#include "sim/application.h"

namespace fchain::sim {

struct HostSpec {
  double cpu_capacity = 2.0;  ///< cores (dual-core Xeon, as in the paper)
};

struct CloudConfig {
  std::size_t host_count = 6;
  /// Peak cores transiently stolen from a VM by co-located tenants.
  double interference_level = 0.06;
  /// Residual NTP skew bound per host, milliseconds.
  double max_clock_skew_ms = 5.0;
};

class Cloud {
 public:
  explicit Cloud(CloudConfig config, std::uint64_t seed);

  /// Deploys an application; its components are placed round-robin across
  /// the hosts (interleaving tenants, as multi-tenant clouds do). Returns
  /// the application's index.
  std::size_t deploy(Application app);

  std::size_t applicationCount() const { return apps_.size(); }
  Application& app(std::size_t index) { return apps_[index]; }
  const Application& app(std::size_t index) const { return apps_[index]; }

  std::size_t hostCount() const { return config_.host_count; }

  /// Host running one application's component.
  HostId hostOf(std::size_t app_index, ComponentId component) const;

  /// Components of one application hosted on `host` (for per-host slaves).
  std::vector<ComponentId> componentsOn(std::size_t app_index,
                                        HostId host) const;

  /// Residual clock skew of a host in milliseconds (fixed per run).
  double clockSkewMs(HostId host) const { return skew_ms_[host]; }

  /// Advances every tenant by one second, refreshing per-host interference
  /// first so co-located VMs see correlated contention.
  void step();

  TimeSec now() const { return apps_.empty() ? 0 : apps_.front().now(); }

 private:
  CloudConfig config_;
  Rng rng_;
  std::vector<Application> apps_;
  std::vector<std::vector<HostId>> placement_;  // [app][component] -> host
  std::vector<double> interference_ar_;         // per-host AR(1) state
  std::vector<double> skew_ms_;
  std::size_t next_host_ = 0;
};

}  // namespace fchain::sim
