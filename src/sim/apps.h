// Builders for the three benchmark applications of the paper's evaluation.
//
//  - RUBiS (EJB): client -> web -> {app1, app2} -> db (Fig. 5), driven by a
//    NASA-trace-like diurnal workload; SLO: avg response time <= 100 ms.
//  - IBM System S tax app: 7 PEs (Fig. 2) exchanging gap-free tuple streams,
//    driven by a ClarkNet-like workload; SLO: per-tuple time <= 20 ms.
//    PE6 joins the PE2 and PE3 streams in lockstep, which produces the
//    paper's back-pressure propagation PE3 -> PE6 -> PE2.
//  - Hadoop sort: 3 map nodes (self-sourcing 12 GB) -> 6 reduce nodes with
//    highly bursty metrics; SLO: job progress must not stall for 30 s.
//
// The numeric calibration keeps every component below ~60 % utilization at
// workload peak, so SLO violations only occur under injected faults (or
// deliberately injected external factors).
#pragma once

#include <cstdint>

#include "sim/application.h"

namespace fchain::sim {

enum class AppKind : std::uint8_t { Rubis, SystemS, Hadoop, Mesh };

std::string_view appKindName(AppKind kind);

/// Topology + calibration for the requested benchmark. AppKind::Mesh yields
/// the default-config microservice mesh (sim/mesh.h); parameterized meshes go
/// through makeMicroMeshSpec directly.
ApplicationSpec makeRubisSpec();
ApplicationSpec makeSystemSSpec();
ApplicationSpec makeHadoopSpec();
ApplicationSpec makeAppSpec(AppKind kind);

/// Default SLO threshold (seconds of latency; ignored for Hadoop).
double sloLatencyThreshold(AppKind kind);

/// Builds the application and attaches its default workload trace
/// (`seconds` long) generated from `rng`. Hadoop is a batch job and gets no
/// external trace.
Application makeApplication(AppKind kind, std::size_t seconds, Rng& rng);

}  // namespace fchain::sim
