// Trace-driven workload replay at million-user scale.
//
// The diurnal generators in src/trace produce one double per second — fine
// for hour-long runs, but a million-user replay wants a *compact* recorded
// artifact: a seeded event trace (flash crowds, regional load shifts) over a
// closed-form diurnal baseline. A WorkloadTrace is a few hundred bytes of
// config plus one record per event; intensityAt(t) is a pure function of
// (config, events, t), so live generation and file replay produce bit-equal
// intensities — which is what makes replayed telemetry byte-identical to
// live telemetry at the same seed (tests/trace_replay_test.cpp pins this).
//
// The file format follows the persist conventions: CRC-framed little-endian
// records (one header frame + one frame per event), rejected with the byte
// offset of the damage on truncation or corruption. TraceCursor streams the
// file frame by frame and keeps only the events whose effect window covers
// the current tick, so replay memory stays bounded no matter how long the
// trace — and its folded arithmetic is ordered exactly like the in-memory
// evaluation, so cursor replay is bit-equal too.
#pragma once

#include <cstddef>
#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"

namespace fchain::sim {

struct TraceConfig {
  std::uint64_t seed = 1;
  /// Length of the replay window (seconds; intensityAt clamps above it).
  std::size_t duration_sec = 7200;
  /// Mean external request rate (users/s) around which everything moves.
  double base_users_per_sec = 300.0;
  double diurnal_amplitude = 0.5;
  double diurnal_period_sec = 7200.0;
  /// Per-tick multiplicative noise (counter-hashed: stateless, replayable).
  double noise_level = 0.05;
  /// Flash crowds: sudden spike, exponential decay.
  double flash_per_hour = 2.0;
  double flash_magnitude = 0.9;   ///< peak relative increase per event
  double flash_duration_sec = 60; ///< decay constant
  /// Regional shifts: ramped, permanent steps (traffic moving between
  /// regions) — signed, so load can shift away as well as in.
  double shift_per_hour = 0.6;
  double shift_magnitude = 0.25;  ///< absolute relative step per event
  double shift_ramp_sec = 120.0;
};

struct TraceEvent {
  enum class Kind : std::uint8_t { FlashCrowd = 1, RegionalShift = 2 };
  Kind kind = Kind::FlashCrowd;
  TimeSec start = 0;
  /// Relative intensity delta: peak for flashes, step for shifts (signed).
  double magnitude = 0.0;
  /// Decay constant (flash) or ramp length (shift), seconds.
  double duration_sec = 0.0;
};

/// Flash contributions are defined as exactly zero past this many decay
/// constants, so pruning an expired event never changes a single bit.
inline constexpr double kFlashWindowFactor = 8.0;

/// One event's relative contribution at time t (0 outside its window).
double traceEventContribution(const TraceEvent& event, TimeSec t);
/// True once the event can no longer change intensityAt for any t' >= t
/// (flash window elapsed / shift ramp complete).
bool traceEventExpired(const TraceEvent& event, TimeSec t);

class WorkloadTrace {
 public:
  TraceConfig config;
  /// Sorted by (start, kind, magnitude); generateWorkloadTrace guarantees it.
  std::vector<TraceEvent> events;

  /// Intensity (users/s, >= 0) at tick t. Pure and stateless: the same
  /// (config, events, t) always produces the same bits.
  double intensityAt(TimeSec t) const;

  /// Total simulated users over the configured duration (the bench's >= 1M
  /// assertion integrates this at 1 Hz).
  double totalUsers() const;
};

/// Draws the event schedule from config.seed (byte-deterministic).
WorkloadTrace generateWorkloadTrace(const TraceConfig& config);

// --- File format (persist-framed records) ---------------------------------

/// Serializes header + events; written with persist::writeFileAtomic.
std::vector<std::uint8_t> encodeTrace(const WorkloadTrace& trace);
/// Parses a full buffer; throws persist::CorruptDataError with the absolute
/// byte offset on truncation, bit rot, count mismatch, or trailing bytes.
WorkloadTrace decodeTrace(const std::vector<std::uint8_t>& bytes);

void writeTraceFile(const std::string& path, const WorkloadTrace& trace);
WorkloadTrace readTraceFile(const std::string& path);

/// Streaming reader + evaluator over a trace file: reads one frame at a
/// time, admits events as their start approaches, folds completed regional
/// shifts into a scalar, and drops expired flashes — memory stays O(active
/// events) regardless of trace length. intensityAt must be called with
/// non-decreasing t and is bit-equal to WorkloadTrace::intensityAt.
class TraceCursor {
 public:
  explicit TraceCursor(const std::string& path);

  const TraceConfig& config() const { return config_; }
  double intensityAt(TimeSec t);
  std::size_t activeEvents() const { return active_.size(); }
  std::size_t maxActiveEvents() const { return max_active_; }

 private:
  void admitUpTo(TimeSec t);

  std::ifstream in_;
  std::string path_;
  TraceConfig config_;
  std::uint64_t events_total_ = 0;
  std::uint64_t events_read_ = 0;
  std::size_t file_offset_ = 0;
  std::vector<TraceEvent> active_;
  /// The next event in file order when it has been read but is not yet due
  /// (its start is in the future) — admitted into active_ once t reaches it.
  std::optional<TraceEvent> pending_;
  /// Folded magnitudes of completed regional shifts (prefix of the shift
  /// subsequence in event order, so the sum is bit-equal to the full scan).
  double folded_shift_ = 0.0;
  std::size_t max_active_ = 0;
};

}  // namespace fchain::sim
