#include "sim/slo.h"

namespace fchain::sim {

std::optional<TimeSec> LatencySloMonitor::observe(TimeSec t,
                                                  double latency_sec) {
  if (violation_.has_value()) return violation_;
  if (latency_sec > threshold_) {
    if (++above_ >= sustain_) violation_ = t;
  } else {
    above_ = 0;
  }
  return violation_;
}

std::optional<TimeSec> ProgressSloMonitor::observe(TimeSec t,
                                                   double progress) {
  if (violation_.has_value()) return violation_;
  if (!started_) {
    started_ = progress > 0.0;
    if (!started_) return std::nullopt;
  }
  history_.push_back(progress);
  if (history_.size() > window_ + 1) history_.pop_front();
  if (history_.size() > window_) {
    const double old = history_[history_.size() - window_ - 1];
    if (progress - old < min_delta_) violation_ = t;
  }
  return violation_;
}

}  // namespace fchain::sim
