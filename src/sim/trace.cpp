#include "sim/trace.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <tuple>

#include "common/rng.h"
#include "persist/codec.h"

namespace fchain::sim {

namespace {

constexpr std::uint32_t kTraceMagic = 0x46435452;  // "FCTR"
constexpr std::uint32_t kEventMagic = 0x46435445;  // "FCTE"
constexpr std::uint32_t kTraceVersion = 1;

/// Closed-form diurnal baseline (no per-tick state).
double baseAt(const TraceConfig& config, TimeSec t) {
  const double phase = 2.0 * std::numbers::pi * static_cast<double>(t) /
                       std::max(1.0, config.diurnal_period_sec);
  return config.base_users_per_sec *
         (1.0 + config.diurnal_amplitude * std::sin(phase));
}

/// Counter-hashed per-tick noise: a fresh Rng per (seed, t), so the factor
/// is a pure function of time — identical between live generation, full-file
/// replay, and cursor replay.
double noiseFactorAt(const TraceConfig& config, TimeSec t) {
  if (config.noise_level <= 0.0) return 1.0;
  Rng rng(mixSeed(config.seed, 0x401aeull, static_cast<std::uint64_t>(t)));
  return std::max(0.0, 1.0 + config.noise_level * rng.gaussian());
}

double composeIntensity(const TraceConfig& config, TimeSec t,
                        double flash_sum, double shift_sum) {
  const double value = baseAt(config, t) * (1.0 + flash_sum) *
                       (1.0 + shift_sum) * noiseFactorAt(config, t);
  return std::max(0.0, value);
}

void encodeEvent(persist::Encoder& out, const TraceEvent& event) {
  out.u8(static_cast<std::uint8_t>(event.kind));
  out.i64(event.start);
  out.f64(event.magnitude);
  out.f64(event.duration_sec);
}

TraceEvent decodeEvent(persist::Decoder& in) {
  TraceEvent event;
  const std::uint8_t kind = in.u8();
  if (kind != static_cast<std::uint8_t>(TraceEvent::Kind::FlashCrowd) &&
      kind != static_cast<std::uint8_t>(TraceEvent::Kind::RegionalShift)) {
    in.fail("unknown trace event kind " + std::to_string(kind));
  }
  event.kind = static_cast<TraceEvent::Kind>(kind);
  event.start = static_cast<TimeSec>(in.i64());
  event.magnitude = in.f64();
  event.duration_sec = in.f64();
  if (!in.done()) in.fail("trailing bytes in trace event");
  return event;
}

/// Parses one frame starting at `offset` (advanced past it on return);
/// rethrows decode errors with the file-absolute byte offset.
persist::FrameView takeFrame(std::span<const std::uint8_t> bytes,
                             std::size_t& offset, std::uint32_t magic,
                             const char* what) {
  if (bytes.size() - offset < persist::kFrameHeaderSize) {
    throw persist::CorruptDataError(
        std::string("truncated trace file: incomplete ") + what + " frame",
        bytes.size());
  }
  std::uint64_t payload_len = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    payload_len |= static_cast<std::uint64_t>(bytes[offset + 8 + i])
                   << (8 * i);
  }
  const std::size_t remaining =
      bytes.size() - offset - persist::kFrameHeaderSize;
  if (payload_len > remaining) {
    throw persist::CorruptDataError(
        std::string("truncated trace file: ") + what + " payload cut short",
        bytes.size());
  }
  const std::size_t frame_len = persist::kFrameHeaderSize +
                                static_cast<std::size_t>(payload_len);
  try {
    const persist::FrameView view =
        persist::unframe(bytes.subspan(offset, frame_len), magic,
                         kTraceVersion);
    offset += frame_len;
    return view;
  } catch (const persist::CorruptDataError& e) {
    throw persist::CorruptDataError(e.what(), offset + e.offset());
  }
}

struct TraceHeader {
  TraceConfig config;
  std::uint64_t event_count = 0;
};

void encodeHeader(persist::Encoder& out, const TraceConfig& config,
                  std::uint64_t event_count) {
  out.u64(config.seed);
  out.u64(config.duration_sec);
  out.f64(config.base_users_per_sec);
  out.f64(config.diurnal_amplitude);
  out.f64(config.diurnal_period_sec);
  out.f64(config.noise_level);
  out.f64(config.flash_per_hour);
  out.f64(config.flash_magnitude);
  out.f64(config.flash_duration_sec);
  out.f64(config.shift_per_hour);
  out.f64(config.shift_magnitude);
  out.f64(config.shift_ramp_sec);
  out.u64(event_count);
}

TraceHeader decodeHeader(persist::Decoder& in) {
  TraceHeader header;
  header.config.seed = in.u64();
  header.config.duration_sec = static_cast<std::size_t>(in.u64());
  header.config.base_users_per_sec = in.f64();
  header.config.diurnal_amplitude = in.f64();
  header.config.diurnal_period_sec = in.f64();
  header.config.noise_level = in.f64();
  header.config.flash_per_hour = in.f64();
  header.config.flash_magnitude = in.f64();
  header.config.flash_duration_sec = in.f64();
  header.config.shift_per_hour = in.f64();
  header.config.shift_magnitude = in.f64();
  header.config.shift_ramp_sec = in.f64();
  header.event_count = in.u64();
  if (!in.done()) in.fail("trailing bytes in trace header");
  return header;
}

}  // namespace

double traceEventContribution(const TraceEvent& event, TimeSec t) {
  if (t < event.start) return 0.0;
  const double dt = static_cast<double>(t - event.start);
  if (event.kind == TraceEvent::Kind::FlashCrowd) {
    if (event.duration_sec <= 0.0 ||
        dt >= kFlashWindowFactor * event.duration_sec) {
      // Defined as exactly zero past the window, so pruning is bit-neutral.
      return 0.0;
    }
    return event.magnitude * std::exp(-dt / event.duration_sec);
  }
  // Regional shift: ramp to the (signed) step, then hold forever. The
  // completed branch returns the stored magnitude verbatim so a folded
  // cursor accumulates the identical bits.
  if (event.duration_sec <= 0.0 || dt >= event.duration_sec) {
    return event.magnitude;
  }
  return event.magnitude * (dt / event.duration_sec);
}

bool traceEventExpired(const TraceEvent& event, TimeSec t) {
  if (t < event.start) return false;
  const double dt = static_cast<double>(t - event.start);
  if (event.kind == TraceEvent::Kind::FlashCrowd) {
    return event.duration_sec <= 0.0 ||
           dt >= kFlashWindowFactor * event.duration_sec;
  }
  return event.duration_sec <= 0.0 || dt >= event.duration_sec;
}

double WorkloadTrace::intensityAt(TimeSec t) const {
  double flash_sum = 0.0;
  double shift_sum = 0.0;
  for (const TraceEvent& event : events) {
    if (event.kind == TraceEvent::Kind::FlashCrowd) {
      flash_sum += traceEventContribution(event, t);
    } else {
      shift_sum += traceEventContribution(event, t);
    }
  }
  return composeIntensity(config, t, flash_sum, shift_sum);
}

double WorkloadTrace::totalUsers() const {
  double total = 0.0;
  for (std::size_t t = 0; t < config.duration_sec; ++t) {
    total += intensityAt(static_cast<TimeSec>(t));
  }
  return total;
}

WorkloadTrace generateWorkloadTrace(const TraceConfig& config) {
  WorkloadTrace trace;
  trace.config = config;
  Rng rng(mixSeed(config.seed, 0xf1a5ull));
  const double hours = static_cast<double>(config.duration_sec) / 3600.0;
  const auto draw_count = [&](double per_hour) {
    const double expected = std::max(0.0, per_hour * hours);
    auto n = static_cast<std::size_t>(expected);
    if (rng.uniform() < expected - static_cast<double>(n)) ++n;
    return n;
  };

  const std::size_t flashes = draw_count(config.flash_per_hour);
  for (std::size_t i = 0; i < flashes; ++i) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::FlashCrowd;
    event.start = static_cast<TimeSec>(
        rng.below(std::max<std::uint64_t>(1, config.duration_sec)));
    event.magnitude = config.flash_magnitude * (0.6 + 0.8 * rng.uniform());
    event.duration_sec =
        config.flash_duration_sec * (0.7 + 0.6 * rng.uniform());
    trace.events.push_back(event);
  }
  const std::size_t shifts = draw_count(config.shift_per_hour);
  for (std::size_t i = 0; i < shifts; ++i) {
    TraceEvent event;
    event.kind = TraceEvent::Kind::RegionalShift;
    event.start = static_cast<TimeSec>(
        rng.below(std::max<std::uint64_t>(1, config.duration_sec)));
    const double sign = rng.chance(0.5) ? 1.0 : -1.0;
    event.magnitude =
        sign * config.shift_magnitude * (0.6 + 0.8 * rng.uniform());
    event.duration_sec = config.shift_ramp_sec * (0.7 + 0.6 * rng.uniform());
    trace.events.push_back(event);
  }

  std::sort(trace.events.begin(), trace.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.start, a.kind, a.magnitude, a.duration_sec) <
                     std::tie(b.start, b.kind, b.magnitude, b.duration_sec);
            });
  return trace;
}

std::vector<std::uint8_t> encodeTrace(const WorkloadTrace& trace) {
  persist::Encoder header;
  encodeHeader(header, trace.config, trace.events.size());
  std::vector<std::uint8_t> bytes =
      persist::frame(kTraceMagic, kTraceVersion, header.buffer());
  for (const TraceEvent& event : trace.events) {
    persist::Encoder body;
    encodeEvent(body, event);
    const std::vector<std::uint8_t> framed =
        persist::frame(kEventMagic, kTraceVersion, body.buffer());
    bytes.insert(bytes.end(), framed.begin(), framed.end());
  }
  return bytes;
}

WorkloadTrace decodeTrace(const std::vector<std::uint8_t>& bytes) {
  std::size_t offset = 0;
  const persist::FrameView header_frame =
      takeFrame(bytes, offset, kTraceMagic, "header");
  persist::Decoder header_in(header_frame.payload);
  TraceHeader header;
  try {
    header = decodeHeader(header_in);
  } catch (const persist::CorruptDataError& e) {
    throw persist::CorruptDataError(e.what(),
                                    persist::kFrameHeaderSize + e.offset());
  }
  WorkloadTrace trace;
  trace.config = header.config;
  for (std::uint64_t i = 0; i < header.event_count; ++i) {
    const std::size_t frame_start = offset;
    const persist::FrameView view =
        takeFrame(bytes, offset, kEventMagic, "event");
    persist::Decoder in(view.payload);
    try {
      trace.events.push_back(decodeEvent(in));
    } catch (const persist::CorruptDataError& e) {
      throw persist::CorruptDataError(
          e.what(), frame_start + persist::kFrameHeaderSize + e.offset());
    }
  }
  if (offset != bytes.size()) {
    throw persist::CorruptDataError("trailing bytes after trace events",
                                    offset);
  }
  return trace;
}

void writeTraceFile(const std::string& path, const WorkloadTrace& trace) {
  persist::writeFileAtomic(path, encodeTrace(trace));
}

WorkloadTrace readTraceFile(const std::string& path) {
  return decodeTrace(persist::readFileBytes(path));
}

// --- TraceCursor -----------------------------------------------------------

namespace {

/// Reads exactly one frame from the stream; throws CorruptDataError with the
/// absolute file offset on short reads or damage.
persist::FrameView readFrameFrom(std::ifstream& in, std::size_t& offset,
                                 std::uint32_t magic, const char* what,
                                 std::vector<std::uint8_t>& storage) {
  storage.resize(persist::kFrameHeaderSize);
  in.read(reinterpret_cast<char*>(storage.data()),
          static_cast<std::streamsize>(storage.size()));
  if (in.gcount() != static_cast<std::streamsize>(storage.size())) {
    throw persist::CorruptDataError(
        std::string("truncated trace file: incomplete ") + what + " frame",
        offset + static_cast<std::size_t>(std::max<std::streamsize>(
                     0, in.gcount())));
  }
  std::uint64_t payload_len = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    payload_len |= static_cast<std::uint64_t>(storage[8 + i]) << (8 * i);
  }
  // An implausible length means a corrupt header; cap before allocating.
  if (payload_len > (1u << 20)) {
    throw persist::CorruptDataError("implausible trace frame length",
                                    offset + 8);
  }
  storage.resize(persist::kFrameHeaderSize +
                 static_cast<std::size_t>(payload_len));
  in.read(reinterpret_cast<char*>(storage.data() + persist::kFrameHeaderSize),
          static_cast<std::streamsize>(payload_len));
  if (in.gcount() != static_cast<std::streamsize>(payload_len)) {
    throw persist::CorruptDataError(
        std::string("truncated trace file: ") + what + " payload cut short",
        offset + persist::kFrameHeaderSize +
            static_cast<std::size_t>(
                std::max<std::streamsize>(0, in.gcount())));
  }
  try {
    const persist::FrameView view =
        persist::unframe(storage, magic, kTraceVersion);
    offset += storage.size();
    return view;
  } catch (const persist::CorruptDataError& e) {
    throw persist::CorruptDataError(e.what(), offset + e.offset());
  }
}

}  // namespace

TraceCursor::TraceCursor(const std::string& path)
    : in_(path, std::ios::binary), path_(path) {
  if (!in_) throw std::runtime_error("cannot open trace file: " + path);
  std::vector<std::uint8_t> storage;
  const persist::FrameView header_frame =
      readFrameFrom(in_, file_offset_, kTraceMagic, "header", storage);
  persist::Decoder header_in(header_frame.payload);
  TraceHeader header;
  try {
    header = decodeHeader(header_in);
  } catch (const persist::CorruptDataError& e) {
    throw persist::CorruptDataError(e.what(),
                                    persist::kFrameHeaderSize + e.offset());
  }
  config_ = header.config;
  events_total_ = header.event_count;
}

void TraceCursor::admitUpTo(TimeSec t) {
  // A frame read ahead of its due time parks in pending_ — events are sorted
  // by start, so nothing behind it can be due either, and the file is not
  // touched again until t catches up.
  if (pending_) {
    if (pending_->start > t) return;
    active_.push_back(*pending_);
    max_active_ = std::max(max_active_, active_.size());
    pending_.reset();
  }
  std::vector<std::uint8_t> storage;
  while (events_read_ < events_total_) {
    const std::size_t frame_start = file_offset_;
    const persist::FrameView view =
        readFrameFrom(in_, file_offset_, kEventMagic, "event", storage);
    persist::Decoder in(view.payload);
    TraceEvent event;
    try {
      event = decodeEvent(in);
    } catch (const persist::CorruptDataError& e) {
      throw persist::CorruptDataError(
          e.what(), frame_start + persist::kFrameHeaderSize + e.offset());
    }
    ++events_read_;
    if (event.start > t) {
      pending_ = event;
      break;
    }
    active_.push_back(event);
    max_active_ = std::max(max_active_, active_.size());
  }
}

double TraceCursor::intensityAt(TimeSec t) {
  admitUpTo(t);

  // Prune in event order. Flash contributions are exactly zero once expired,
  // so dropping them never changes the sum. A completed regional shift folds
  // its exact magnitude into the running scalar — but only while it is the
  // earliest unfolded shift, so the fold order equals the full-scan
  // accumulation order and the arithmetic stays bit-equal.
  std::size_t write = 0;
  bool shift_blocked = false;
  for (std::size_t read = 0; read < active_.size(); ++read) {
    const TraceEvent& event = active_[read];
    const bool expired = traceEventExpired(event, t);
    if (event.kind == TraceEvent::Kind::FlashCrowd) {
      if (expired) continue;  // drop
    } else {
      if (expired && !shift_blocked) {
        folded_shift_ += event.magnitude;
        continue;  // folded
      }
      shift_blocked = true;  // later shifts must wait for this one
    }
    active_[write++] = event;
  }
  active_.resize(write);

  double flash_sum = 0.0;
  double shift_sum = folded_shift_;
  for (const TraceEvent& event : active_) {
    if (event.kind == TraceEvent::Kind::FlashCrowd) {
      flash_sum += traceEventContribution(event, t);
    } else {
      shift_sum += traceEventContribution(event, t);
    }
  }
  return composeIntensity(config_, t, flash_sum, shift_sum);
}

}  // namespace fchain::sim
