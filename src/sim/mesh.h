// Microservice-mesh workload generator.
//
// The paper's three benchmarks are monolithic-era topologies (4, 7, and 9
// components). Modern cloud applications are meshes: hundreds of services in
// tiered fan-out, caches in front of the data tier, bounded-retry RPC
// clients — and the retry-storm amplification those clients produce when a
// downstream tier slows (each caller duplicates calls into the already-slow
// callee, multiplying upstream call volume). `makeMicroMesh` generates such
// applications — 50–200+ services, seeded and byte-deterministic — as
// standard ApplicationSpec/Application objects, so the simulator, injector,
// online monitor, fleet tier, and campaign sweep compose with them
// unchanged (tests/mesh_property_test.cpp pins the structural contract).
//
// Topology: `tiers` layers — an entry tier of gateways (the workload
// sources), fan-out middle tiers, and a data tier of stores (the sinks).
// Every edge goes from tier t to tier t+1 (the DAG depth bound), each
// service calls `min_fanout..max_fanout` distinct services of the next tier,
// and an uncovered-service repair pass guarantees every service is reachable
// from the entry tier without exceeding the fan-out bound. Component
// capacities are auto-calibrated from the propagated expected load so that
// utilization at workload peak stays below `peak_utilization` — SLO
// violations therefore only occur under injected faults or deliberate
// surges, matching the calibration contract of sim/apps.h.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/rng.h"
#include "sim/application.h"

namespace fchain::sim {

struct MeshConfig {
  /// Total service count across all tiers (>= 3 * tiers).
  std::size_t services = 120;
  /// Topology seed: same seed, same config -> byte-identical spec. Distinct
  /// from the Application noise seed, so one topology can be replayed under
  /// many noise draws.
  std::uint64_t seed = 1;
  /// Layer count: 1 entry tier + (tiers - 2) fan-out tiers + 1 data tier.
  std::size_t tiers = 6;
  /// Per-service out-degree bounds (data-tier services are sinks).
  std::size_t min_fanout = 2;
  std::size_t max_fanout = 4;
  /// Cache in front of the data tier: fraction of calls served caller-side.
  double cache_hit_ratio = 0.35;
  /// Working-set headroom: the cache knee sits at this multiple of each
  /// edge's calibrated healthy demand, so normal diurnal peaks keep their
  /// hit ratio while a surge (or a hog on the cache host) degrades it.
  double cache_headroom = 2.8;
  /// Bounded-retry RPC clients on every edge (0 disables retries).
  int max_retries = 2;
  /// Callee queue-fill fraction where client timeouts (retries) begin.
  double retry_threshold = 0.55;
  /// Client wait per retry in flight (feeds the path-latency estimate).
  double retry_backoff_sec = 0.05;
  /// Mean external request rate driving the entry tier.
  double base_users_per_sec = 400.0;
  /// Target utilization of the busiest resource at diurnal peak.
  double peak_utilization = 0.45;
};

/// Canonical config for a mesh of `services` services under `seed` (the knob
/// the campaign and benches sweep; everything else keeps defaults).
MeshConfig meshConfigFor(std::size_t services, std::uint64_t seed);

/// Generates the mesh topology + calibration. Byte-deterministic in the
/// config; throws std::invalid_argument for infeasible configs (too few
/// services for the tier count, fan-out bounds that cannot cover a tier).
ApplicationSpec makeMicroMeshSpec(const MeshConfig& config);

/// Latency SLO threshold (seconds) for the mesh: a fixed multiple of the
/// healthy reference-path service time, recomputed from the (deterministic)
/// spec so it scales with depth and calibration.
double meshSloLatencyThreshold(const MeshConfig& config);

/// Builds the mesh application and attaches its diurnal workload trace
/// (`seconds` long), mirroring sim::makeApplication's rng discipline: one
/// draw for the noise seed, then the trace generation.
Application makeMicroMesh(const MeshConfig& config, std::size_t seconds,
                          Rng& rng);

}  // namespace fchain::sim
