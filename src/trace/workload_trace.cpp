#include "trace/workload_trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <numbers>
#include <sstream>

namespace fchain::trace {

DiurnalTraceConfig nasaLikeConfig() {
  DiurnalTraceConfig config;
  config.base_rate = 100.0;
  config.diurnal_amplitude = 0.55;
  config.diurnal_period_sec = 7200.0;
  config.secondary_amplitude = 0.18;
  config.secondary_period_sec = 590.0;
  config.noise_level = 0.08;
  config.flash_per_hour = 1.2;
  config.flash_magnitude = 0.5;
  config.flash_duration_sec = 40.0;
  config.phase = 0.0;
  return config;
}

DiurnalTraceConfig clarknetLikeConfig() {
  DiurnalTraceConfig config;
  config.base_rate = 140.0;
  config.diurnal_amplitude = 0.35;
  config.diurnal_period_sec = 6400.0;
  config.secondary_amplitude = 0.22;
  config.secondary_period_sec = 710.0;
  config.noise_level = 0.12;
  config.flash_per_hour = 2.2;
  config.flash_magnitude = 0.7;
  config.flash_duration_sec = 30.0;
  config.phase = std::numbers::pi / 3.0;
  return config;
}

std::vector<double> generateDiurnalTrace(const DiurnalTraceConfig& config,
                                         std::size_t seconds, Rng& rng) {
  std::vector<double> trace;
  trace.reserve(seconds);

  // Flash crowds arrive as a Poisson process; each adds an exponentially
  // decaying multiplicative bump.
  double flash_boost = 0.0;
  const double flash_prob_per_sec = config.flash_per_hour / 3600.0;
  // AR(1) noise gives short-range correlation (self-similar-ish burstiness)
  // instead of white noise.
  double ar_noise = 0.0;
  const double ar_rho = 0.85;

  for (std::size_t t = 0; t < seconds; ++t) {
    const double tt = static_cast<double>(t);
    const double daily =
        std::sin(2.0 * std::numbers::pi * tt / config.diurnal_period_sec +
                 config.phase);
    const double hourly =
        std::sin(2.0 * std::numbers::pi * tt / config.secondary_period_sec +
                 2.0 * config.phase);
    double rate = config.base_rate *
                  (1.0 + config.diurnal_amplitude * daily +
                   config.secondary_amplitude * hourly);

    if (rng.chance(flash_prob_per_sec)) {
      flash_boost += config.flash_magnitude;
    }
    flash_boost *= std::exp(-1.0 / config.flash_duration_sec);
    rate *= 1.0 + flash_boost;

    ar_noise = ar_rho * ar_noise +
               std::sqrt(1.0 - ar_rho * ar_rho) * rng.gaussian();
    rate *= 1.0 + config.noise_level * ar_noise;

    trace.push_back(std::max(0.0, rate));
  }
  return trace;
}

std::vector<double> loadTraceCsv(const std::string& path) {
  std::vector<double> values;
  std::ifstream in(path);
  if (!in) return values;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    // Accept "value" or "time,value" rows; take the last field.
    const auto comma = line.find_last_of(',');
    const std::string field =
        comma == std::string::npos ? line : line.substr(comma + 1);
    try {
      values.push_back(std::stod(field));
    } catch (const std::exception&) {
      // Skip headers / malformed rows.
    }
  }
  return values;
}

}  // namespace fchain::trace
