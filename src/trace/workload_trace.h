// Workload intensity traces.
//
// The paper modulates RUBiS request rates with the NASA web-server trace
// (July 1 1995) and System S tuple arrival rates with the ClarkNet trace
// (Aug 28 1995), both from the IRCache archive. Those archives are not
// redistributable here, so we provide synthetic generators with the same
// qualitative structure — a strong diurnal cycle, self-similar short-range
// burstiness, flash crowds, and heavy-tailed noise — plus a CSV loader for
// anyone who has the real traces. The property FChain's evaluation needs is
// *realistic non-stationarity*, which these generators deliver.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace fchain::trace {

struct DiurnalTraceConfig {
  /// Mean intensity (requests/s or tuples/s) around which the trace moves.
  double base_rate = 100.0;
  /// Peak-to-mean ratio of the daily cycle.
  double diurnal_amplitude = 0.5;
  /// Period of the daily cycle in seconds (86400 = real day; evaluation runs
  /// compress it so one-hour runs still see workload drift).
  double diurnal_period_sec = 7200.0;
  /// Relative magnitude of secondary (hour-scale) oscillation.
  double secondary_amplitude = 0.15;
  double secondary_period_sec = 610.0;
  /// Gaussian noise stddev relative to the instantaneous rate.
  double noise_level = 0.08;
  /// Expected flash-crowd events per hour; each multiplies the rate.
  double flash_per_hour = 1.5;
  double flash_magnitude = 0.6;   ///< peak relative increase
  double flash_duration_sec = 45; ///< exponential decay constant
  /// Phase offset so NASA-like and ClarkNet-like traces differ.
  double phase = 0.0;
};

/// A NASA-July-1995-like profile: pronounced day/night swing, moderate noise.
DiurnalTraceConfig nasaLikeConfig();

/// A ClarkNet-Aug-1995-like profile: higher base load, burstier, flatter cycle.
DiurnalTraceConfig clarknetLikeConfig();

/// Generates `seconds` samples of request intensity (>= 0), 1 Hz.
std::vector<double> generateDiurnalTrace(const DiurnalTraceConfig& config,
                                         std::size_t seconds, Rng& rng);

/// Loads a one-column (or "time,value") CSV of 1 Hz intensities. Lines that
/// do not parse are skipped. Returns an empty vector when the file is absent.
std::vector<double> loadTraceCsv(const std::string& path);

}  // namespace fchain::trace
