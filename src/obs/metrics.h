// Metric registry: named counters, gauges, and fixed-bucket histograms.
//
// The hot-path contract is the whole point: increments and observations are
// lock-free relaxed atomics, safe from any thread, and a concurrent
// snapshot() sees some consistent-enough recent value of each instrument
// (metrics are monitoring data, not ledger entries — per-instrument atomic
// reads are the right consistency level, and TSan-clean). Registration is
// the slow path (a mutex plus a map insert); callers register once and keep
// the returned reference, which stays valid for the registry's lifetime.
//
// FChainMaster owns a registry per instance, replacing the bespoke
// MasterRuntimeStats plumbing (runtimeStats() is now a thin adapter over
// the registry counters); a process-global registry (obs::metrics()) is
// available for instruments that outlive any one component.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fchain::obs {

/// Monotonic unsigned counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Double-valued gauge: set() overwrites, add() accumulates (CAS loop —
/// the atomic<double> fetch_add path is not universally lock-free).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Read-only copy of a histogram's state.
struct HistogramSnapshot {
  std::vector<double> bounds;          ///< ascending upper bounds
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (+inf overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
};

/// Fixed-bucket histogram. Bucket i counts observations v with
/// v <= bounds[i] (and > bounds[i-1]); the last bucket catches everything
/// above the top bound. Bucket edges are inclusive on the upper side
/// (Prometheus "le" semantics).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);
  HistogramSnapshot snapshot() const;
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  Gauge sum_;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the named instrument, creating it on first use. References
  /// stay valid for the registry's lifetime. A name identifies exactly one
  /// instrument kind — re-registering it as a different kind throws
  /// std::invalid_argument, as does re-registering a histogram with
  /// different bounds.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  /// Consistent-per-instrument copy of every registered value.
  MetricsSnapshot snapshot() const;

  /// {"counters":{...},"gauges":{...},"histograms":{...}} with names
  /// sorted — deterministic for a fixed set of values.
  void writeJson(std::ostream& out) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Sums `from` into `into` (fleet dashboards: one flat view over many
/// per-shard registries): counters and gauges add; histograms add
/// bucket-wise. A histogram present in both with different bounds throws
/// std::invalid_argument — the same name must mean the same instrument.
void mergeInto(MetricsSnapshot& into, const MetricsSnapshot& from);

/// Process-global registry for instruments with no narrower owner.
MetricRegistry& metrics();

}  // namespace fchain::obs
