#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <new>
#include <ostream>
#include <stdexcept>

namespace fchain::obs {

namespace {

/// Doubles in JSON: shortest round-trip representation is overkill here;
/// %.17g round-trips and stays deterministic for a fixed value.
void writeDouble(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << (v > 0 ? "1e308" : (v < 0 ? "-1e308" : "0"));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out << buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("histogram bounds must be ascending");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(
      bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t index = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.add(v);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.reserve(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets.push_back(buckets_[i].load(std::memory_order_relaxed));
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.value();
  return snap;
}

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key(name);
  const auto it = counters_.find(key);
  if (it != counters_.end()) return *it->second;
  if (gauges_.contains(key) || histograms_.contains(key)) {
    throw std::invalid_argument("metric '" + key +
                                "' already registered as another kind");
  }
  return *counters_.emplace(key, std::make_unique<Counter>())
              .first->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key(name);
  const auto it = gauges_.find(key);
  if (it != gauges_.end()) return *it->second;
  if (counters_.contains(key) || histograms_.contains(key)) {
    throw std::invalid_argument("metric '" + key +
                                "' already registered as another kind");
  }
  return *gauges_.emplace(key, std::make_unique<Gauge>()).first->second;
}

Histogram& MetricRegistry::histogram(std::string_view name,
                                     std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key(name);
  const auto it = histograms_.find(key);
  if (it != histograms_.end()) {
    if (it->second->bounds() != bounds) {
      throw std::invalid_argument("histogram '" + key +
                                  "' re-registered with different bounds");
    }
    return *it->second;
  }
  if (counters_.contains(key) || gauges_.contains(key)) {
    throw std::invalid_argument("metric '" + key +
                                "' already registered as another kind");
  }
  return *histograms_
              .emplace(key, std::make_unique<Histogram>(std::move(bounds)))
              .first->second;
}

MetricsSnapshot MetricRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace(name, histogram->snapshot());
  }
  return snap;
}

void MetricRegistry::writeJson(std::ostream& out) const {
  const MetricsSnapshot snap = snapshot();
  out << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":" << value;
  }
  out << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":";
    writeDouble(out, value);
  }
  out << "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out << ",";
    first = false;
    out << "\"" << name << "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out << ",";
      writeDouble(out, h.bounds[i]);
    }
    out << "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i > 0) out << ",";
      out << h.buckets[i];
    }
    out << "],\"count\":" << h.count << ",\"sum\":";
    writeDouble(out, h.sum);
    out << "}";
  }
  out << "}}\n";
}

void mergeInto(MetricsSnapshot& into, const MetricsSnapshot& from) {
  for (const auto& [name, value] : from.counters) {
    into.counters[name] += value;
  }
  for (const auto& [name, value] : from.gauges) {
    into.gauges[name] += value;
  }
  for (const auto& [name, h] : from.histograms) {
    const auto it = into.histograms.find(name);
    if (it == into.histograms.end()) {
      into.histograms.emplace(name, h);
      continue;
    }
    HistogramSnapshot& dst = it->second;
    if (dst.bounds != h.bounds) {
      throw std::invalid_argument("histogram '" + name +
                                  "' merged with different bounds");
    }
    for (std::size_t i = 0; i < dst.buckets.size(); ++i) {
      dst.buckets[i] += h.buckets[i];
    }
    dst.count += h.count;
    dst.sum += h.sum;
  }
}

MetricRegistry& metrics() {
  // Same immortal in-place idiom as obs::tracer(): no lazy-init heap
  // allocation, no static-teardown destruction.
  alignas(MetricRegistry) static unsigned char storage[sizeof(
      MetricRegistry)];
  static MetricRegistry* instance =
      ::new (static_cast<void*>(storage)) MetricRegistry();
  return *instance;
}

}  // namespace fchain::obs
