#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <ostream>
#include <utility>

namespace fchain::obs {

namespace {

/// Per-thread cache of (tracer instance id, state). A plain vector beats a
/// hash map here: a process holds one or two live tracers (the global one
/// plus a test-local instance), so the scan is one or two integer compares.
/// Entries are never erased — a destroyed tracer's slot is stale but
/// unreachable, because instance ids are never reused.
struct ThreadEntry {
  std::uint64_t tracer_id = 0;
  Tracer::ThreadState state;
};

thread_local std::vector<ThreadEntry> tls_entries;

std::atomic<std::uint64_t> g_next_tracer_id{1};

/// JSON string escaping for span names. Names are our own literals, so this
/// mostly passes through, but the exporter must never emit invalid JSON.
void writeJsonString(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          const char* hex = "0123456789abcdef";
          out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

std::uint64_t Tracer::now() const {
  const ClockFn clock = clock_.load(std::memory_order_acquire);
  if (clock != nullptr) return clock();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer::Tracer()
    : instance_id_(g_next_tracer_id.fetch_add(1, std::memory_order_relaxed)) {
}

Tracer::ThreadState& Tracer::threadState() {
  for (ThreadEntry& entry : tls_entries) {
    if (entry.tracer_id == instance_id_) return entry.state;
  }
  tls_entries.push_back(ThreadEntry{instance_id_, ThreadState{}});
  tls_entries.back().state.tid =
      next_tid_.fetch_add(1, std::memory_order_relaxed);
  return tls_entries.back().state;
}

void Tracer::record(SpanRecord&& span) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(span));
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.clear();
}

std::vector<SpanRecord> Tracer::records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

std::vector<SpanStats> Tracer::stats() const {
  std::vector<SpanStats> out;
  for (const SpanRecord& span : records()) {
    auto it = std::find_if(out.begin(), out.end(), [&](const SpanStats& s) {
      return s.name == span.name;
    });
    if (it == out.end()) {
      out.push_back(SpanStats{span.name, 1, span.dur_us, span.dur_us,
                              span.dur_us});
      continue;
    }
    ++it->count;
    it->total_us += span.dur_us;
    it->min_us = std::min(it->min_us, span.dur_us);
    it->max_us = std::max(it->max_us, span.dur_us);
  }
  std::sort(out.begin(), out.end(), [](const SpanStats& a,
                                       const SpanStats& b) {
    if (a.total_us != b.total_us) return a.total_us > b.total_us;
    return a.name < b.name;
  });
  return out;
}

void Tracer::writeChromeTrace(std::ostream& out) const {
  const std::vector<SpanRecord> spans = records();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":";
    writeJsonString(out, span.name);
    out << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << span.tid
        << ",\"ts\":" << span.start_us << ",\"dur\":" << span.dur_us
        << ",\"args\":{\"depth\":" << span.depth;
    if (span.arg_name != nullptr) {
      out << ",";
      writeJsonString(out, span.arg_name);
      out << ":" << span.arg_value;
    }
    out << "}}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

void Tracer::writeSummary(std::ostream& out) const {
  out << "span                             count    total_us     mean_us"
         "      min_us      max_us\n";
  for (const SpanStats& s : stats()) {
    const std::uint64_t mean = s.count == 0 ? 0 : s.total_us / s.count;
    out << s.name;
    for (std::size_t pad = s.name.size(); pad < 32; ++pad) out << ' ';
    char buf[64];
    std::snprintf(buf, sizeof(buf), " %8zu %11llu %11llu %11llu %11llu\n",
                  s.count, static_cast<unsigned long long>(s.total_us),
                  static_cast<unsigned long long>(mean),
                  static_cast<unsigned long long>(s.min_us),
                  static_cast<unsigned long long>(s.max_us));
    out << buf;
  }
}

void Tracer::recordSpan(const char* name, std::uint64_t start_us,
                        std::uint64_t end_us, const char* arg_name,
                        std::int64_t arg_value) {
  if (!enabled()) return;
  const ThreadState& state = threadState();
  SpanRecord span;
  span.name = name;
  span.start_us = start_us;
  span.dur_us = end_us >= start_us ? end_us - start_us : 0;
  span.tid = state.tid;
  span.depth = state.depth;
  span.arg_name = arg_name;
  span.arg_value = arg_value;
  record(std::move(span));
}

Span::Span(const char* name) : Span(tracer(), name) {}

void Span::open(const char* name) {
  name_ = name;
  Tracer::ThreadState& state = tracer_->threadState();
  tid_ = state.tid;
  depth_ = state.depth++;
  start_us_ = tracer_->now();
}

void Span::close() {
  const std::uint64_t end = tracer_->now();
  Tracer::ThreadState& state = tracer_->threadState();
  if (state.depth > 0) --state.depth;
  SpanRecord record;
  record.name = name_;
  record.start_us = start_us_;
  record.dur_us = end >= start_us_ ? end - start_us_ : 0;
  record.tid = tid_;
  record.depth = depth_;
  record.arg_name = arg_name_;
  record.arg_value = arg_value_;
  tracer_->record(std::move(record));
}

Tracer& tracer() {
  // Immortal in-place construction: no heap allocation (the signal-kernel
  // hot paths are covered by allocation-counting tests and must not pay a
  // lazy-init malloc) and no destruction (spans may close during static
  // teardown).
  alignas(Tracer) static unsigned char storage[sizeof(Tracer)];
  static Tracer* instance = [] {
    Tracer* t = ::new (static_cast<void*>(storage)) Tracer();
    const char* env = std::getenv("FCHAIN_TRACE");
    if (env != nullptr && env[0] != '\0' &&
        !(env[0] == '0' && env[1] == '\0')) {
      t->setEnabled(true);
    }
    return t;
  }();
  return *instance;
}

}  // namespace fchain::obs
