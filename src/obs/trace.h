// Lightweight span tracer for the localization pipeline.
//
// FChain's headline claim is *online* localization — pinpointing within
// seconds of the SLO violation — so the analysis pipeline itself needs a
// profile: where does a localize() call spend its wall-clock (fan-out wait
// vs. per-VM selection vs. FFT/CUSUM math)? The tracer answers that with
// nestable RAII spans recorded per thread and exported as Chrome trace
// format JSON (load the file in chrome://tracing or https://ui.perfetto.dev)
// plus a compact per-name text summary.
//
// Design constraints, in order:
//   1. Near-zero cost when disabled. The hot paths (signal kernels, per-VM
//      selector) open a span per call; a disabled tracer must cost one
//      relaxed atomic load there, no clock read, no allocation. Span carries
//      a nullptr tracer in that case and the destructor is a branch.
//   2. Deterministic for tests. The clock is injectable (a plain function
//      pointer returning microseconds), so a logical clock makes the JSON
//      byte-exact; thread ids are small integers assigned per tracer in
//      first-span order, not platform thread ids.
//   3. No dependencies. The obs library sits below every other target (even
//      common) so runtime/signal/core can all link it.
//
// The process-global tracer (obs::tracer()) starts disabled unless the
// FCHAIN_TRACE environment variable is set to anything but "0"/"". Tests
// construct their own Tracer instances and stay isolated from it.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace fchain::obs {

/// One closed span. `tid` is the tracer-local thread index (first-span
/// order) and `depth` the nesting level within that thread when the span
/// opened — both recorded explicitly so tests can assert attribution
/// without reparsing timestamps.
struct SpanRecord {
  std::string name;
  std::uint64_t start_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
  std::uint32_t depth = 0;
  /// Optional integer payload (batch size, sample count, ...). arg_name is
  /// a string literal supplied by the instrumentation site; nullptr = none.
  const char* arg_name = nullptr;
  std::int64_t arg_value = 0;
};

/// Aggregated per-name statistics for the text summary.
struct SpanStats {
  std::string name;
  std::size_t count = 0;
  std::uint64_t total_us = 0;
  std::uint64_t min_us = 0;
  std::uint64_t max_us = 0;
};

class Span;

class Tracer {
 public:
  /// Microsecond clock. Injectable for deterministic tests; nullptr
  /// restores the default steady_clock-based source.
  using ClockFn = std::uint64_t (*)();

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void setEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void setClock(ClockFn clock) {
    clock_.store(clock, std::memory_order_release);
  }

  /// Current time in microseconds from the active clock source.
  std::uint64_t now() const;

  /// Drops every recorded span (thread ids keep their assignments).
  void clear();

  /// Copy of the closed spans, in close order.
  std::vector<SpanRecord> records() const;

  /// Aggregates spans by name, sorted by total time descending (name
  /// ascending as the tiebreak).
  std::vector<SpanStats> stats() const;

  /// Chrome trace format: {"traceEvents":[{"ph":"X",...},...]}. With an
  /// injected logical clock the output is byte-exact for a fixed span
  /// sequence (records are written in close order).
  void writeChromeTrace(std::ostream& out) const;

  /// Compact per-name table (count / total / mean / min / max).
  void writeSummary(std::ostream& out) const;

  /// Records an already-measured interval as a span on the calling thread,
  /// at the thread's current nesting depth. Used where the interval starts
  /// before the recording thread could open an RAII span (e.g. a worker
  /// reporting how long a task sat in the queue). No-op when disabled.
  void recordSpan(const char* name, std::uint64_t start_us,
                  std::uint64_t end_us, const char* arg_name = nullptr,
                  std::int64_t arg_value = 0);

  /// Tracer-local thread bookkeeping, looked up through a thread_local
  /// cache keyed by tracer identity (see trace.cpp).
  struct ThreadState {
    std::uint32_t tid = 0;
    std::uint32_t depth = 0;
  };

 private:
  friend class Span;

  ThreadState& threadState();
  void record(SpanRecord&& span);

  std::atomic<bool> enabled_{false};
  std::atomic<ClockFn> clock_{nullptr};
  std::atomic<std::uint32_t> next_tid_{0};
  /// Process-unique id assigned at construction. Thread-local span state is
  /// keyed by this id, not the tracer address: a test tracer on the stack
  /// can be destroyed and a new one constructed at the same address, and
  /// the new tracer must not inherit the old one's thread ids/depths.
  const std::uint64_t instance_id_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> records_;
};

/// RAII span. Construction on a disabled tracer stores a null pointer and
/// does nothing else; destruction closes and records the span.
class Span {
 public:
  Span(Tracer& tracer, const char* name)
      : tracer_(tracer.enabled() ? &tracer : nullptr) {
    if (tracer_ != nullptr) open(name);
  }
  /// Opens on the process-global tracer.
  explicit Span(const char* name);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  ~Span() {
    if (tracer_ != nullptr) close();
  }

  /// Attaches one integer payload ("n" items, component id, ...). `key`
  /// must be a string literal (it is stored by pointer). No-op when the
  /// span is disabled.
  void arg(const char* key, std::int64_t value) {
    if (tracer_ == nullptr) return;
    arg_name_ = key;
    arg_value_ = value;
  }

 private:
  void open(const char* name);
  void close();

  Tracer* tracer_;
  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::uint32_t tid_ = 0;
  std::uint32_t depth_ = 0;
  const char* arg_name_ = nullptr;
  std::int64_t arg_value_ = 0;
};

/// Process-global tracer. First use reads FCHAIN_TRACE from the environment
/// ("1"/anything non-"0" enables tracing at startup; tests and benches can
/// still toggle it later with setEnabled).
Tracer& tracer();

#define FCHAIN_OBS_CONCAT_INNER(a, b) a##b
#define FCHAIN_OBS_CONCAT(a, b) FCHAIN_OBS_CONCAT_INNER(a, b)

/// Opens a span named `name` (a string literal) on the global tracer for
/// the rest of the enclosing scope.
#define FCHAIN_SPAN(name) \
  ::fchain::obs::Span FCHAIN_OBS_CONCAT(fchain_obs_span_, __LINE__){name}

/// Same, but binds the span to `var` so the site can attach an arg.
#define FCHAIN_SPAN_VAR(var, name) ::fchain::obs::Span var{name}

}  // namespace fchain::obs
