// Cross-shard merge of per-shard PinpointResults (fleet tier).
//
// Each master shard localizes only its owned slice of an application, so a
// shard-local verdict is computed on partial evidence: the shard's chain
// head may not be the application's chain head, its external-factor check
// sees only a fraction of the components, and its dependency refinement
// cannot reach components owned elsewhere. The aggregator therefore ignores
// every shard-local *decision* and re-derives the verdict from the shard
// results' *evidence*:
//
//   - `chain` carries every abnormal ComponentFinding of the slice, with
//     full metric detail — and component analysis is strictly
//     component-local (a slave analyzes one VM's look-back window without
//     reference to any other VM), so the union of the shard chains is
//     exactly the finding set a single master would have collected;
//   - analyzed/unanalyzed accounting is additive across disjoint slices.
//
// merge() feeds that union through the *same* IntegratedPinpointer a single
// master runs: findings re-sort by (onset, component) — a total order, since
// a component appears in exactly one slice — so the head onset, the
// concurrency-threshold window around it, the external-factor uniformity
// check (which sees sum-of-slice-sizes == total on full coverage), and the
// dependency refinement against the full graph all compose exactly. The
// result is byte-identical to the single-master PinpointResult; the
// partitioned-replay golden suite (tests/fleet_identity_test.cpp) and the
// seeded split fuzzer (tests/fleet_aggregator_fuzz_test.cpp) pin this.
#pragma once

#include <vector>

#include "fchain/pinpoint.h"
#include "fleet/hash_ring.h"
#include "netdep/dependency.h"

namespace fchain::fleet {

/// One shard's contribution to a fleet localization: the slice it owns (in
/// fleet-caller order) and its master's PinpointResult over that slice. A
/// shard that is down contributes an empty result with every slice
/// component in `result.unanalyzed` — exactly what its master would report
/// if all its slaves were dark.
struct ShardPartial {
  ShardId shard = 0;
  std::vector<ComponentId> components;
  core::PinpointResult result;
};

class FleetAggregator {
 public:
  explicit FleetAggregator(core::FChainConfig config = {})
      : pinpointer_(config) {}

  /// Merges per-shard partials into the application-level PinpointResult.
  /// `total_components` is the full application size (the partials may
  /// cover less when components were unrouted); `dependencies` is the
  /// application's graph — the same one a single master would hold (pass
  /// nullptr or an empty graph for the chronology-only fallback).
  core::PinpointResult merge(const std::vector<ShardPartial>& partials,
                             std::size_t total_components,
                             const netdep::DependencyGraph* dependencies) const;

  /// A down shard's partial: nothing analyzed, the whole slice unanalyzed.
  static ShardPartial darkShard(ShardId shard,
                                std::vector<ComponentId> slice);

 private:
  core::IntegratedPinpointer pinpointer_;
};

/// Splits `components` into per-shard slices by ring ownership, preserving
/// the caller's component order inside each slice; slices come back in
/// ascending ShardId order (only shards that own something appear). The
/// `result` fields are default-constructed — the caller fills them.
std::vector<ShardPartial> partitionByOwner(
    const HashRing& ring, const std::vector<ComponentId>& components);

}  // namespace fchain::fleet
