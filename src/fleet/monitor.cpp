#include "fleet/monitor.h"

#include <utility>

namespace fchain::fleet {

namespace {

FleetConfig fleetConfigFrom(const FleetMonitorConfig& config) {
  FleetConfig fleet;
  fleet.shards = config.shards;
  fleet.vnodes = config.vnodes;
  fleet.fchain = config.monitor.fchain;
  fleet.retry = config.monitor.retry;
  fleet.shard_worker_threads = config.monitor.worker_threads;
  fleet.fleet_threads = config.fleet_threads;
  fleet.journal_dir = config.journal_dir;
  return fleet;
}

}  // namespace

FleetMonitor::FleetMonitor(FleetMonitorConfig config)
    : config_(std::move(config)), fleet_(fleetConfigFrom(config_)) {
  monitors_.reserve(fleet_.shardCount());
  local2fleet_.resize(fleet_.shardCount());
  for (std::size_t s = 0; s < fleet_.shardCount(); ++s) {
    auto monitor = std::make_unique<online::OnlineMonitor>(config_.monitor);
    const ShardId shard = static_cast<ShardId>(s);
    monitor->setLocalizer(
        [this, shard](std::size_t local_app,
                      const std::vector<ComponentId>& components, TimeSec tv) {
          return runFleetLocalize(local2fleet_[shard][local_app], components,
                                  tv);
        });
    monitor->onIncident([this, shard](const online::OnlineIncident& incident) {
      online::OnlineIncident fleet_incident = incident;
      fleet_incident.app = local2fleet_[shard][incident.app];
      incidents_.push_back(std::move(fleet_incident));
      if (callback_) callback_(incidents_.back());
    });
    monitors_.push_back(std::move(monitor));
  }
}

core::PinpointResult FleetMonitor::runFleetLocalize(
    std::size_t fleet_app, const std::vector<ComponentId>& components,
    TimeSec tv) {
  // Per-application dependency semantics, mirrored from OnlineMonitor's own
  // fire(): fires are serialized per monitor and the shard monitors run on
  // the caller's thread, so the install cannot race a localize.
  const FleetApp& app = apps_[fleet_app];
  fleet_.setDependencies(app.has_deps ? app.deps : default_deps_);
  return fleet_.localize(components, tv);
}

void FleetMonitor::addSlave(core::FChainSlave* slave) {
  fleet_.addSlave(slave);
  for (ShardPartial& slice :
       partitionByOwner(fleet_.ring(), slave->components())) {
    monitors_[slice.shard]->addEndpoint(
        std::make_shared<runtime::LocalEndpoint>(slave),
        slice.components);
  }
}

void FleetMonitor::addEndpoint(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint,
    const std::vector<ComponentId>& components) {
  fleet_.addEndpoint(endpoint, components);
  for (ShardPartial& slice : partitionByOwner(fleet_.ring(), components)) {
    monitors_[slice.shard]->addEndpoint(endpoint, slice.components);
  }
}

std::size_t FleetMonitor::addApplication(online::AppSpec spec) {
  FleetApp app;
  app.shard = fleet_.ring().ownerOfApp(spec.name);
  app.local = monitors_[app.shard]->addApplication(std::move(spec));
  const std::size_t fleet_index = apps_.size();
  local2fleet_[app.shard].push_back(fleet_index);
  apps_.push_back(std::move(app));
  return fleet_index;
}

void FleetMonitor::setDependencies(netdep::DependencyGraph graph) {
  default_deps_ = std::move(graph);
  fleet_.setDependencies(default_deps_);
}

void FleetMonitor::setDependencies(std::size_t app,
                                   netdep::DependencyGraph graph) {
  FleetApp& state = apps_.at(app);
  state.deps = std::move(graph);
  state.has_deps = true;
}

void FleetMonitor::ingest(ComponentId id, TimeSec t,
                          const std::array<double, kMetricCount>& sample) {
  monitors_[fleet_.ownerOf(id)]->ingest(id, t, sample);
}

bool FleetMonitor::observeLatency(std::size_t app, TimeSec t,
                                  double latency_sec) {
  const FleetApp& state = apps_.at(app);
  return monitors_[state.shard]->observeLatency(state.local, t, latency_sec);
}

bool FleetMonitor::observeProgress(std::size_t app, TimeSec t,
                                   double progress) {
  const FleetApp& state = apps_.at(app);
  return monitors_[state.shard]->observeProgress(state.local, t, progress);
}

bool FleetMonitor::observe(std::size_t app, const sim::StreamTick& tick) {
  const FleetApp& state = apps_.at(app);
  return monitors_[state.shard]->observe(state.local, tick);
}

std::size_t FleetMonitor::pump() {
  std::size_t fired = 0;
  for (auto& monitor : monitors_) fired += monitor->pump();
  return fired;
}

std::size_t FleetMonitor::drain() {
  std::size_t fired = 0;
  for (auto& monitor : monitors_) fired += monitor->drain();
  return fired;
}

}  // namespace fchain::fleet
