#include "fleet/fleet.h"

#include <stdexcept>
#include <utility>

#include "runtime/worker_pool.h"

namespace fchain::fleet {

FleetMaster::FleetMaster(FleetConfig config)
    : config_(config),
      ring_(std::max<std::size_t>(1, config.shards), config.vnodes),
      aggregator_(config.fchain) {
  shards_.resize(ring_.shardCount());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    if (!config_.journal_dir.empty()) {
      shards_[s].journal = std::make_unique<persist::IncidentJournal>(
          shardJournalPath(static_cast<ShardId>(s)));
    }
    shards_[s].master = buildMaster(shards_[s]);
  }
}

FleetMaster::~FleetMaster() = default;

FleetMaster::Shard& FleetMaster::checkedShard(ShardId shard) {
  if (shard >= shards_.size()) {
    throw std::out_of_range("FleetMaster: unknown shard");
  }
  return shards_[shard];
}

const FleetMaster::Shard& FleetMaster::checkedShard(ShardId shard) const {
  if (shard >= shards_.size()) {
    throw std::out_of_range("FleetMaster: unknown shard");
  }
  return shards_[shard];
}

std::unique_ptr<core::FChainMaster> FleetMaster::buildMaster(Shard& shard) {
  auto master =
      std::make_unique<core::FChainMaster>(config_.fchain, config_.retry);
  master->setWorkerThreads(config_.shard_worker_threads);
  master->setDependencies(dependencies_);
  if (shard.journal) master->setIncidentJournal(shard.journal.get());
  for (const Registration& reg : shard.registrations) {
    master->registerEndpoint(reg.endpoint, reg.components);
  }
  return master;
}

void FleetMaster::registerSlices(
    std::shared_ptr<runtime::SlaveEndpoint> endpoint,
    const std::vector<ComponentId>& components) {
  for (ShardPartial& slice : partitionByOwner(ring_, components)) {
    Shard& shard = checkedShard(slice.shard);
    shard.registrations.push_back(
        Registration{endpoint, std::move(slice.components)});
    if (shard.master) {
      shard.master->registerEndpoint(shard.registrations.back().endpoint,
                                     shard.registrations.back().components);
    }
  }
}

void FleetMaster::addSlave(core::FChainSlave* slave) {
  // A LocalEndpoint per owning shard (not one shared endpoint): each shard
  // master's registered-identity guard then sees a distinct endpoint, and
  // the underlying slave analysis is const + thread-safe, so cross-shard
  // fan-out over the same slave is fine.
  for (ShardPartial& slice : partitionByOwner(ring_, slave->components())) {
    Shard& shard = checkedShard(slice.shard);
    shard.registrations.push_back(
        Registration{std::make_shared<runtime::LocalEndpoint>(slave),
                     std::move(slice.components)});
    if (shard.master) {
      shard.master->registerEndpoint(shard.registrations.back().endpoint,
                                     shard.registrations.back().components);
    }
  }
}

void FleetMaster::addEndpoint(std::shared_ptr<runtime::SlaveEndpoint> endpoint,
                              const std::vector<ComponentId>& components) {
  registerSlices(std::move(endpoint), components);
}

void FleetMaster::setDependencies(netdep::DependencyGraph graph) {
  dependencies_ = std::move(graph);
  for (Shard& shard : shards_) {
    if (shard.master) shard.master->setDependencies(dependencies_);
  }
}

core::PinpointResult FleetMaster::localize(
    const std::vector<ComponentId>& components, TimeSec violation_time) {
  metric_localizations_.add();
  metric_components_.add(components.size());

  std::vector<ShardPartial> partials = partitionByOwner(ring_, components);
  const auto runSlice = [&](ShardPartial& partial) {
    Shard& shard = shards_[partial.shard];
    if (!shard.master) {
      metric_dark_slices_.add();
      partial = FleetAggregator::darkShard(partial.shard,
                                           std::move(partial.components));
      return;
    }
    metric_shard_fanouts_.add();
    partial.result = shard.master->localize(partial.components,
                                            violation_time);
  };

  if (config_.fleet_threads >= 1 && partials.size() > 1) {
    if (!pool_) {
      pool_ = std::make_unique<runtime::WorkerPool>(config_.fleet_threads);
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(partials.size());
    for (ShardPartial& partial : partials) {
      tasks.push_back([&runSlice, &partial] { runSlice(partial); });
    }
    pool_->run(std::move(tasks));
  } else {
    for (ShardPartial& partial : partials) runSlice(partial);
  }

  return aggregator_.merge(partials, components.size(), &dependencies_);
}

void FleetMaster::crashShard(ShardId shard) {
  Shard& s = checkedShard(shard);
  // Order matters: the master holds a raw journal pointer, so it must die
  // first. The journal object closes its stream; the file stays — that IS
  // the crash state recoverShard() reads back.
  s.master.reset();
  s.journal.reset();
}

std::vector<core::RerunIncident> FleetMaster::recoverShard(ShardId shard) {
  Shard& s = checkedShard(shard);
  if (s.master) return {};
  if (!config_.journal_dir.empty()) {
    s.journal = std::make_unique<persist::IncidentJournal>(
        shardJournalPath(shard));
  }
  s.master = buildMaster(s);
  if (!s.journal) return {};
  return core::rerunPendingIncidents(*s.master, *s.journal);
}

bool FleetMaster::shardAlive(ShardId shard) const {
  return checkedShard(shard).master != nullptr;
}

core::FChainMaster& FleetMaster::shardMaster(ShardId shard) {
  Shard& s = checkedShard(shard);
  if (!s.master) throw std::logic_error("FleetMaster: shard is crashed");
  return *s.master;
}

persist::IncidentJournal* FleetMaster::shardJournal(ShardId shard) {
  return checkedShard(shard).journal.get();
}

std::string FleetMaster::shardJournalPath(ShardId shard) const {
  return config_.journal_dir + "/shard-" + std::to_string(shard) +
         ".incidents";
}

obs::MetricsSnapshot FleetMaster::fleetMetricsSnapshot() const {
  obs::MetricsSnapshot merged = registry_.snapshot();
  for (const Shard& shard : shards_) {
    if (shard.master) {
      obs::mergeInto(merged, shard.master->metrics().snapshot());
    }
  }
  return merged;
}

}  // namespace fchain::fleet
