// Consistent-hash assignment of components and applications to master
// shards (fleet tier, see docs/ARCHITECTURE.md "Fleet-scale sharding").
//
// One FChainMaster can only analyze so many components per second; the
// fleet tier splits ownership across N master shards. The assignment must
// be:
//   - total and unique: every key is owned by exactly one shard;
//   - deterministic and insertion-order invariant: two processes that know
//     the same shard set agree on every owner without coordination;
//   - stable under membership change: adding or removing one shard remaps
//     only the keys adjacent to the moved ring points (expected fraction
//     1/N, bounded well under 2/N with the default virtual-node count) —
//     a naive `id % N` would remap almost everything.
//
// Implementation: the classic ring. Each shard contributes `vnodes`
// deterministic points (mixSeed of shard id and replica index); a key is
// owned by the shard whose point is the first at or clockwise after the
// key's hash, wrapping at the top. Everything hashes through the repo's
// SplitMix64-based mixSeed, so owners are identical across platforms and
// process restarts.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace fchain::fleet {

/// Identifier of one master shard in the fleet tier.
using ShardId = std::uint32_t;

class HashRing {
 public:
  /// Virtual nodes per shard. 128 keeps the worst observed remap fraction
  /// across the tested fleet sizes comfortably below the 2/N contract.
  static constexpr std::size_t kDefaultVnodes = 128;

  HashRing() = default;

  /// Ring over shards {0, 1, ..., shards-1}.
  explicit HashRing(std::size_t shards, std::size_t vnodes = kDefaultVnodes);

  /// Ring over an explicit shard set (duplicates ignored). The resulting
  /// assignment depends only on the *set*, never on the vector's order.
  explicit HashRing(const std::vector<ShardId>& shards,
                    std::size_t vnodes = kDefaultVnodes);

  /// Adds / removes one shard; both rebuild the point list deterministically
  /// from the resulting shard set. Adding an existing shard or removing an
  /// unknown one is a no-op.
  void addShard(ShardId shard);
  void removeShard(ShardId shard);

  std::size_t shardCount() const { return shards_.size(); }
  bool empty() const { return shards_.empty(); }

  /// The shard set, ascending.
  const std::vector<ShardId>& shards() const { return shards_; }

  /// Owner of an arbitrary pre-hashed key. Throws std::logic_error on an
  /// empty ring (there is no owner to return).
  ShardId ownerOfKey(std::uint64_t key) const;

  ShardId ownerOfComponent(ComponentId id) const {
    return ownerOfKey(componentKey(id));
  }
  ShardId ownerOfApp(std::string_view name) const {
    return ownerOfKey(appKey(name));
  }

  /// Key derivations, exposed so tests and tooling can reason about
  /// placement without a ring instance.
  static std::uint64_t componentKey(ComponentId id);
  static std::uint64_t appKey(std::string_view name);

 private:
  void rebuild();

  std::vector<ShardId> shards_;  ///< ascending, unique
  std::size_t vnodes_ = kDefaultVnodes;
  /// (point hash, shard), sorted by point then shard — the sort makes the
  /// ring a pure function of the shard set.
  std::vector<std::pair<std::uint64_t, ShardId>> points_;
};

}  // namespace fchain::fleet
