#include "fleet/hash_ring.h"

#include <algorithm>
#include <stdexcept>

#include "common/rng.h"

namespace fchain::fleet {

namespace {

/// Salt streams keeping ring points, component keys, and app keys in
/// disjoint hash families.
constexpr std::uint64_t kVnodeSalt = 0x519a7d0full;
constexpr std::uint64_t kComponentSalt = 0xc03b0e27ull;
constexpr std::uint64_t kAppSalt = 0xa99f1ab5ull;

/// FNV-1a 64 over the name bytes; folded through mixSeed below so app keys
/// share the SplitMix64 avalanche with every other key family.
std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

HashRing::HashRing(std::size_t shards, std::size_t vnodes)
    : vnodes_(std::max<std::size_t>(1, vnodes)) {
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(static_cast<ShardId>(s));
  }
  rebuild();
}

HashRing::HashRing(const std::vector<ShardId>& shards, std::size_t vnodes)
    : shards_(shards), vnodes_(std::max<std::size_t>(1, vnodes)) {
  std::sort(shards_.begin(), shards_.end());
  shards_.erase(std::unique(shards_.begin(), shards_.end()), shards_.end());
  rebuild();
}

void HashRing::addShard(ShardId shard) {
  const auto it = std::lower_bound(shards_.begin(), shards_.end(), shard);
  if (it != shards_.end() && *it == shard) return;
  shards_.insert(it, shard);
  rebuild();
}

void HashRing::removeShard(ShardId shard) {
  const auto it = std::lower_bound(shards_.begin(), shards_.end(), shard);
  if (it == shards_.end() || *it != shard) return;
  shards_.erase(it);
  rebuild();
}

void HashRing::rebuild() {
  points_.clear();
  points_.reserve(shards_.size() * vnodes_);
  for (const ShardId shard : shards_) {
    for (std::size_t replica = 0; replica < vnodes_; ++replica) {
      points_.emplace_back(
          mixSeed(kVnodeSalt, shard, static_cast<std::uint64_t>(replica)),
          shard);
    }
  }
  std::sort(points_.begin(), points_.end());
}

ShardId HashRing::ownerOfKey(std::uint64_t key) const {
  if (points_.empty()) {
    throw std::logic_error("HashRing: ownerOfKey on an empty ring");
  }
  // First point at or clockwise after the key; wrap to the lowest point.
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), key,
      [](const std::pair<std::uint64_t, ShardId>& point, std::uint64_t k) {
        return point.first < k;
      });
  return it == points_.end() ? points_.front().second : it->second;
}

std::uint64_t HashRing::componentKey(ComponentId id) {
  return mixSeed(kComponentSalt, static_cast<std::uint64_t>(id));
}

std::uint64_t HashRing::appKey(std::string_view name) {
  return mixSeed(kAppSalt, fnv1a(name));
}

}  // namespace fchain::fleet
