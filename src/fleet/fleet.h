// Fleet-scale sharded localization tier (ROADMAP "fleet-scale master
// tier"; see docs/ARCHITECTURE.md "Fleet-scale sharding").
//
// One FChainMaster owns every component of every application it serves, so
// a single process bounds the fleet's components-per-second. FleetMaster
// splits that ownership across N independent master shards:
//
//               ┌── shard 0: FChainMaster ── endpoints of its slice
//   FleetMaster ┼── shard 1: FChainMaster ── ...
//     HashRing  └── shard N-1 ...
//        │
//        └─ localize(app, tv): partitionByOwner → per-shard localize →
//           FleetAggregator::merge  (byte-identical to one master; see
//           fleet/aggregator.h for the composition argument)
//
// Ownership is consistent-hash assignment (fleet/hash_ring.h): slaves and
// endpoints register once with the fleet, which slices their component
// lists by ring owner and registers each slice with the owning shard.
// Applications therefore span shards transparently — localize() fans out to
// every shard owning a piece of the app and re-derives the application
// verdict from the union of shard evidence.
//
// Failover reuses the single-master crash story unchanged: each shard has
// its own persist::IncidentJournal, so a shard that dies mid-localization
// leaves a pending entry in *its* journal only. While a shard is down the
// fleet keeps answering in degraded mode (the dead shard's slice reports
// unanalyzed, coverage drops — same contract as a dark slave). recoverShard()
// rebuilds the shard master from the retained registrations and re-runs its
// pending incidents via core::rerunPendingIncidents.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "fchain/master.h"
#include "fchain/recovery.h"
#include "fleet/aggregator.h"
#include "fleet/hash_ring.h"
#include "obs/metrics.h"
#include "persist/journal.h"

namespace fchain::runtime {
class WorkerPool;
}  // namespace fchain::runtime

namespace fchain::fleet {

struct FleetConfig {
  /// Number of master shards (ids 0..shards-1). 1 collapses the tier to a
  /// single master behind the fleet interface.
  std::size_t shards = 2;
  /// Virtual nodes per shard on the assignment ring.
  std::size_t vnodes = HashRing::kDefaultVnodes;

  /// Per-shard master configuration — identical across shards, and it must
  /// equal the single-master config the goldens were produced with for the
  /// byte-identity contract to hold.
  core::FChainConfig fchain;
  runtime::RetryPolicy retry;

  /// Worker threads inside each shard master's own fan-out (0 = the serial
  /// reference path).
  int shard_worker_threads = 0;

  /// Threads for the cross-shard fan-out of one fleet localize() (0 =
  /// serial, shards walked in ascending id order). Safe with LocalEndpoint
  /// transports (slave analysis is const + thread-safe); only enable for
  /// other transports when every endpoint tolerates concurrent requests
  /// from *different* shard masters.
  int fleet_threads = 0;

  /// Directory for per-shard incident journals ("" disables journaling).
  /// Shard k journals to <journal_dir>/shard-<k>.incidents.
  std::string journal_dir;
};

class FleetMaster {
 public:
  explicit FleetMaster(FleetConfig config = {});
  ~FleetMaster();

  // --- Registration (before localizations start) -------------------------

  /// Registers an in-process slave with every shard owning one of its
  /// components (each shard gets a LocalEndpoint over the slice it owns).
  /// The slave must outlive the fleet; components must be registered first.
  void addSlave(core::FChainSlave* slave);

  /// Registers a transport endpoint under a manifest component list; the
  /// list is sliced by ring ownership and each owning shard registers the
  /// shared endpoint for its slice.
  void addEndpoint(std::shared_ptr<runtime::SlaveEndpoint> endpoint,
                   const std::vector<ComponentId>& components);

  /// Cluster dependency graph (global id space), installed on every shard
  /// and used by the cross-shard merge.
  void setDependencies(netdep::DependencyGraph graph);

  // --- Localization ------------------------------------------------------

  /// Localizes the fault for the application made of `components`,
  /// whichever shards own them. Down shards contribute their slice as
  /// unanalyzed (degraded coverage) instead of failing the localization.
  core::PinpointResult localize(const std::vector<ComponentId>& components,
                                TimeSec violation_time);

  // --- Failover ----------------------------------------------------------

  /// Kills the shard's master process state (its journal file survives on
  /// disk, exactly as a real crash leaves it). Localizations keep running
  /// in degraded mode.
  void crashShard(ShardId shard);

  /// Rebuilds a crashed shard from the retained registrations and re-runs
  /// every localization its journal recorded as started but never
  /// completed. Returns the re-run incidents (empty when none were
  /// pending). No-op returning empty when the shard is already alive.
  std::vector<core::RerunIncident> recoverShard(ShardId shard);

  bool shardAlive(ShardId shard) const;

  // --- Introspection -----------------------------------------------------

  const HashRing& ring() const { return ring_; }
  std::size_t shardCount() const { return shards_.size(); }
  ShardId ownerOf(ComponentId id) const { return ring_.ownerOfComponent(id); }

  /// The shard's live master. Throws std::logic_error while it is crashed.
  core::FChainMaster& shardMaster(ShardId shard);

  /// The shard's journal (nullptr when journaling is disabled or the shard
  /// is crashed); the on-disk path is valid either way.
  persist::IncidentJournal* shardJournal(ShardId shard);
  std::string shardJournalPath(ShardId shard) const;

  /// Fleet-tier instruments:
  ///   fleet.localizations   (counter: fleet-level localize() calls)
  ///   fleet.shard_fanouts   (counter: per-shard localizations issued)
  ///   fleet.dark_slices     (counter: slices answered by a crashed shard)
  ///   fleet.components      (counter: components routed through localize)
  obs::MetricRegistry& metrics() { return registry_; }
  const obs::MetricRegistry& metrics() const { return registry_; }

  /// Sum of every shard master's metric snapshot plus the fleet's own —
  /// the flat view a fleet dashboard scrapes (obs::mergeInto).
  obs::MetricsSnapshot fleetMetricsSnapshot() const;

 private:
  /// One endpoint × slice registration, retained so a crashed shard's
  /// master can be rebuilt with identical routing.
  struct Registration {
    std::shared_ptr<runtime::SlaveEndpoint> endpoint;
    std::vector<ComponentId> components;
  };
  struct Shard {
    std::unique_ptr<core::FChainMaster> master;
    std::unique_ptr<persist::IncidentJournal> journal;
    std::vector<Registration> registrations;
  };

  Shard& checkedShard(ShardId shard);
  const Shard& checkedShard(ShardId shard) const;
  /// Fresh master wired with config, dependencies, and the shard journal;
  /// re-registers `registrations`.
  std::unique_ptr<core::FChainMaster> buildMaster(Shard& shard);
  void registerSlices(std::shared_ptr<runtime::SlaveEndpoint> endpoint,
                      const std::vector<ComponentId>& components);

  FleetConfig config_;
  HashRing ring_;
  FleetAggregator aggregator_;
  netdep::DependencyGraph dependencies_;
  std::vector<Shard> shards_;  ///< index == ShardId
  std::unique_ptr<runtime::WorkerPool> pool_;

  obs::MetricRegistry registry_;
  obs::Counter& metric_localizations_ =
      registry_.counter("fleet.localizations");
  obs::Counter& metric_shard_fanouts_ =
      registry_.counter("fleet.shard_fanouts");
  obs::Counter& metric_dark_slices_ = registry_.counter("fleet.dark_slices");
  obs::Counter& metric_components_ = registry_.counter("fleet.components");
};

}  // namespace fchain::fleet
