#include "fleet/aggregator.h"

#include <algorithm>
#include <map>

namespace fchain::fleet {

core::PinpointResult FleetAggregator::merge(
    const std::vector<ShardPartial>& partials, std::size_t total_components,
    const netdep::DependencyGraph* dependencies) const {
  // Union the evidence. Order does not matter — pinpoint() re-sorts by
  // (onset, component), a total order because slices are disjoint — but
  // walking partials in the given (ascending-shard) order keeps the
  // pre-sort layout deterministic too.
  std::vector<core::ComponentFinding> findings;
  std::vector<ComponentId> unanalyzed;
  std::size_t analyzed = 0;
  for (const ShardPartial& partial : partials) {
    findings.insert(findings.end(), partial.result.chain.begin(),
                    partial.result.chain.end());
    unanalyzed.insert(unanalyzed.end(), partial.result.unanalyzed.begin(),
                      partial.result.unanalyzed.end());
    // Every slice component was either analyzed or reported unanalyzed by
    // its shard master; the counts are additive across disjoint slices.
    analyzed += partial.components.size() - partial.result.unanalyzed.size();
  }

  core::PinpointResult result = pinpointer_.pinpoint(
      std::move(findings), total_components, dependencies, analyzed);
  std::sort(unanalyzed.begin(), unanalyzed.end());
  result.unanalyzed = std::move(unanalyzed);
  return result;
}

ShardPartial FleetAggregator::darkShard(ShardId shard,
                                        std::vector<ComponentId> slice) {
  ShardPartial partial;
  partial.shard = shard;
  partial.result.coverage = slice.empty() ? 1.0 : 0.0;
  partial.result.unanalyzed = slice;
  std::sort(partial.result.unanalyzed.begin(),
            partial.result.unanalyzed.end());
  partial.components = std::move(slice);
  return partial;
}

std::vector<ShardPartial> partitionByOwner(
    const HashRing& ring, const std::vector<ComponentId>& components) {
  std::map<ShardId, std::size_t> slot_of;
  std::vector<ShardPartial> slices;
  for (const ComponentId id : components) {
    const ShardId owner = ring.ownerOfComponent(id);
    const auto [it, inserted] = slot_of.emplace(owner, slices.size());
    if (inserted) {
      slices.emplace_back();
      slices.back().shard = owner;
    }
    slices[it->second].components.push_back(id);
  }
  // Ascending shard order: the merge (and any stats accounting walking the
  // partials) must not depend on which component happened to come first.
  std::sort(slices.begin(), slices.end(),
            [](const ShardPartial& a, const ShardPartial& b) {
              return a.shard < b.shard;
            });
  return slices;
}

}  // namespace fchain::fleet
