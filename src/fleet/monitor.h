// Online fan-in for the fleet tier: N shard-local OnlineMonitors in front
// of one FleetMaster.
//
// In a sharded deployment each master shard runs its own online monitor
// process; an application's SLO signal is watched by the shard that owns
// the *application* (HashRing::ownerOfApp), while each component's
// telemetry streams to the shard that owns the *component*. FleetMonitor
// reproduces that topology in-process:
//
//   ingest(id, t, s) ──▶ monitors_[ownerOfComponent(id)]  (ring + slave)
//   observe(app, …)  ──▶ monitors_[ownerOfApp(app.name)]  (SLO latch)
//                             │ fire
//                             ▼
//              OnlineMonitor::Localizer ──▶ FleetMaster::localize
//                (cross-shard fan-out + FleetAggregator merge)
//
// The shard monitors keep every OnlineMonitor semantic — latch, cooldown,
// queueing, re-arm, tv anchoring — untouched; only the fan-out is routed
// through the fleet, so a fired incident's PinpointResult is byte-identical
// to a single-monitor run over the same stream (each sample reaches the
// shared slave exactly once, via its owner shard's ingest route).
#pragma once

#include <memory>
#include <vector>

#include "fleet/fleet.h"
#include "online/monitor.h"

namespace fchain::fleet {

struct FleetMonitorConfig {
  std::size_t shards = 2;
  std::size_t vnodes = HashRing::kDefaultVnodes;
  /// Shared by every shard monitor; its fchain / retry / worker_threads
  /// settings also configure the fleet's shard masters, so the fan-out runs
  /// under exactly the config a single monitor's master would.
  online::OnlineMonitorConfig monitor;
  /// Cross-shard fan-out threads for one localization (0 = serial).
  int fleet_threads = 0;
  /// Per-shard incident journal directory ("" disables journaling).
  std::string journal_dir;
};

class FleetMonitor {
 public:
  explicit FleetMonitor(FleetMonitorConfig config = {});

  // --- Registration (before streaming starts) ----------------------------

  /// Registers an in-process slave: analysis slices with the fleet's shard
  /// masters, ingest slices with the owning shard monitors. The slave must
  /// outlive the fleet monitor.
  void addSlave(core::FChainSlave* slave);

  /// Registers a transport endpoint (must implement the ingest RPC) under a
  /// manifest component list, sliced by ring ownership on both paths.
  void addEndpoint(std::shared_ptr<runtime::SlaveEndpoint> endpoint,
                   const std::vector<ComponentId>& components);

  /// Registers an application on its owning shard's monitor; returns the
  /// fleet-wide app index used by observe*() and the incident stream.
  std::size_t addApplication(online::AppSpec spec);

  /// Cluster-wide default dependency graph.
  void setDependencies(netdep::DependencyGraph graph);
  /// Per-application graph, installed on the fleet for this app's
  /// localizations only (same semantics as OnlineMonitor::setDependencies).
  void setDependencies(std::size_t app, netdep::DependencyGraph graph);

  // --- Streaming ---------------------------------------------------------

  void ingest(ComponentId id, TimeSec t,
              const std::array<double, kMetricCount>& sample);
  void ingest(const sim::StreamSample& sample) {
    ingest(sample.component, sample.t, sample.values);
  }

  bool observeLatency(std::size_t app, TimeSec t, double latency_sec);
  bool observeProgress(std::size_t app, TimeSec t, double progress);
  bool observe(std::size_t app, const sim::StreamTick& tick);

  /// Pumps every shard monitor (call once per tick). Returns fires summed.
  std::size_t pump();
  std::size_t drain();

  // --- Results / introspection -------------------------------------------

  /// Fleet-wide incident stream in fire order; OnlineIncident::app is the
  /// fleet app index returned by addApplication().
  const std::vector<online::OnlineIncident>& incidents() const {
    return incidents_;
  }
  void onIncident(online::OnlineMonitor::IncidentCallback callback) {
    callback_ = std::move(callback);
  }

  FleetMaster& fleet() { return fleet_; }
  const FleetMaster& fleet() const { return fleet_; }
  std::size_t shardCount() const { return monitors_.size(); }
  online::OnlineMonitor& shardMonitor(ShardId shard) {
    return *monitors_.at(shard);
  }
  ShardId appShard(std::size_t app) const { return apps_.at(app).shard; }

 private:
  struct FleetApp {
    ShardId shard = 0;        ///< owning shard (by app name)
    std::size_t local = 0;    ///< index inside that shard's monitor
    netdep::DependencyGraph deps;
    bool has_deps = false;
  };

  core::PinpointResult runFleetLocalize(
      std::size_t fleet_app, const std::vector<ComponentId>& components,
      TimeSec tv);

  FleetMonitorConfig config_;
  FleetMaster fleet_;
  std::vector<std::unique_ptr<online::OnlineMonitor>> monitors_;
  std::vector<FleetApp> apps_;
  /// local2fleet_[shard][local app index] -> fleet app index.
  std::vector<std::vector<std::size_t>> local2fleet_;
  netdep::DependencyGraph default_deps_;
  std::vector<online::OnlineIncident> incidents_;
  online::OnlineMonitor::IncidentCallback callback_;
};

}  // namespace fchain::fleet
