// Reproduces paper Fig. 7: System S single-component faults — MemLeak,
// CpuHog, Bottleneck.
//
// Expected shape: FChain leads; the Dependency scheme collapses everywhere
// because gap-based dependency discovery finds nothing in gap-free tuple
// streams (it then reports every outlier component); Topology fails on
// MemLeak/Bottleneck via back-pressure; every scheme has depressed precision
// on Bottleneck because its propagation is near-instantaneous (the paper's
// motivation for online validation, Fig. 11).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fchain;
  return benchutil::runFigure(
      "Figure 7: System S single-component fault localization accuracy",
      {eval::systemsMemLeak(), eval::systemsCpuHog(),
       eval::systemsBottleneck()},
      argc, argv);
}
