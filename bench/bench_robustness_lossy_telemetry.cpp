// Robustness benchmark: localization accuracy under a degraded monitoring
// plane. Two sweeps over repeated RUBiS CpuHog incidents:
//
//   1. uniform telemetry sample loss from 0 % to 30 % (all slaves up);
//   2. 0..3 of 4 slaves unresponsive at a fixed 10 % sample loss (the
//      unresponsive slave rotates across trials, so sometimes it is the one
//      hosting the faulty VM — the honest ceiling for k dead slaves is
//      (4-k)/4 localized).
//
// Each trial simulates the incident once, then replays the recorded metric
// stream into four slaves through the lossy-telemetry path (drops become
// gaps that ingestAt gap-fills) and localizes through FlakyEndpoint-wrapped
// transports.
// Reported per configuration: fraction of runs whose pinpointed set
// contains the injected component, mean PinpointResult coverage, and mean
// telemetry repairs per VM.
//
// Usage: bench_robustness_lossy_telemetry [trials] [base_seed]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "fchain/fchain.h"
#include "runtime/flaky_endpoint.h"
#include "sim/injector.h"
#include "sim/simulator.h"

namespace {

using namespace fchain;

constexpr ComponentId kFaulty = 3;  // RUBiS db VM
constexpr std::size_t kComponents = 4;

struct Incident {
  sim::RunRecord record;
  TimeSec tv = 0;
};

/// Simulates one RUBiS CpuHog incident; empty record when no SLO violation.
std::optional<Incident> simulateIncident(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.kind = sim::AppKind::Rubis;
  config.seed = seed;
  faults::FaultSpec fault;
  fault.type = faults::FaultType::CpuHog;
  fault.targets = {kFaulty};
  fault.start_time = 2000;
  fault.intensity = 1.35;
  config.faults = {fault};
  auto result = sim::runScenario(config);
  if (!result.record.violation_time.has_value()) return std::nullopt;
  return Incident{std::move(result.record), *result.record.violation_time};
}

struct TrialOutcome {
  bool localized = false;
  double coverage = 0.0;
  std::size_t repairs = 0;  ///< gap-filled + quarantined samples, all VMs
};

/// Replays one recorded incident through lossy telemetry and flaky slaves.
TrialOutcome runTrial(const Incident& incident, double loss_rate,
                      std::size_t dead_slaves, std::size_t trial,
                      std::uint64_t seed) {
  std::vector<sim::TelemetryFaultSpec> specs;
  if (loss_rate > 0.0) {
    sim::TelemetryFaultSpec loss;
    loss.type = sim::TelemetryFaultType::SampleDropBurst;
    loss.rate = loss_rate;
    loss.seed = mixSeed(seed, 1, trial);
    specs.push_back(loss);
  }
  sim::TelemetryFaultInjector telemetry(std::move(specs));

  // One slave per component; ingestion replays the recorded stream through
  // the lossy channel.
  std::vector<core::FChainSlave> slaves;
  slaves.reserve(kComponents);
  for (HostId h = 0; h < kComponents; ++h) slaves.emplace_back(h);
  for (ComponentId id = 0; id < kComponents; ++id) {
    slaves[id].addComponent(id, incident.record.metrics[id].endTime() -
                                    static_cast<TimeSec>(
                                        incident.record.metrics[id].size()));
    const MetricSeries& recorded = incident.record.metrics[id];
    const TimeSec start = recorded.endTime() -
                          static_cast<TimeSec>(recorded.size());
    for (TimeSec t = start; t < recorded.endTime(); ++t) {
      if (telemetry.sampleDropped(id, t)) continue;
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = recorded.of(kind).at(t);
      }
      slaves[id].ingestAt(id, t, sample);
    }
  }

  core::FChainMaster master;
  for (ComponentId id = 0; id < kComponents; ++id) {
    // Which slaves are unresponsive rotates with the trial index, so the
    // faulty component's slave dies in its fair share of runs.
    const bool dead =
        dead_slaves > 0 &&
        ((id + trial) % kComponents) < dead_slaves;
    if (!dead) {
      master.registerSlave(&slaves[id]);
      continue;
    }
    runtime::FlakyConfig blackout;
    blackout.outage_windows = {{0, incident.record.metrics[id].endTime() + 1}};
    master.registerEndpoint(
        std::make_shared<runtime::FlakyEndpoint>(
            std::make_shared<runtime::LocalEndpoint>(&slaves[id]), blackout),
        {id});
  }

  const auto verdict = master.localize({0, 1, 2, 3}, incident.tv);
  TrialOutcome outcome;
  outcome.coverage = verdict.coverage;
  for (ComponentId id : verdict.pinpointed) {
    if (id == kFaulty) outcome.localized = true;
  }
  for (ComponentId id = 0; id < kComponents; ++id) {
    const core::IngestStats* stats = slaves[id].ingestStatsOf(id);
    outcome.repairs += stats->gaps_filled + stats->quarantined;
  }
  return outcome;
}

void runSweep(const char* title, const std::vector<Incident>& incidents,
              const std::vector<std::pair<double, std::size_t>>& configs,
              std::uint64_t seed) {
  std::printf("%s\n", title);
  std::printf("  %-12s %-12s %-10s %-10s %s\n", "loss_rate", "dead_slaves",
              "localized", "coverage", "repairs/VM");
  for (const auto& [loss, dead] : configs) {
    std::size_t localized = 0;
    double coverage_sum = 0.0;
    double repairs_sum = 0.0;
    for (std::size_t trial = 0; trial < incidents.size(); ++trial) {
      const TrialOutcome outcome =
          runTrial(incidents[trial], loss, dead, trial, seed);
      localized += outcome.localized ? 1 : 0;
      coverage_sum += outcome.coverage;
      repairs_sum += static_cast<double>(outcome.repairs) / kComponents;
    }
    const auto n = static_cast<double>(incidents.size());
    std::printf("  %-12.2f %-12zu %-10.2f %-10.2f %.1f\n", loss, dead,
                static_cast<double>(localized) / n, coverage_sum / n,
                repairs_sum / n);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 10;
  std::uint64_t seed = 42;
  if (argc > 1) trials = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);

  std::printf("Robustness: localization accuracy vs telemetry degradation\n");
  std::printf("(RUBiS CpuHog on db, %zu trials, base seed %llu)\n\n", trials,
              static_cast<unsigned long long>(seed));

  std::vector<Incident> incidents;
  for (std::size_t trial = 0; incidents.size() < trials && trial < 4 * trials;
       ++trial) {
    if (auto incident = simulateIncident(mixSeed(seed, 0xbead, trial))) {
      incidents.push_back(std::move(*incident));
    }
  }
  if (incidents.empty()) {
    std::printf("no trial produced an SLO violation\n");
    return 1;
  }
  std::printf("(%zu incidents with SLO violations)\n\n", incidents.size());

  runSweep("Sweep 1: uniform sample loss, all slaves responsive", incidents,
           {{0.0, 0}, {0.05, 0}, {0.10, 0}, {0.20, 0}, {0.30, 0}}, seed);
  runSweep("Sweep 2: unresponsive slaves at 10 % sample loss", incidents,
           {{0.10, 0}, {0.10, 1}, {0.10, 2}, {0.10, 3}}, seed);
  std::printf(
      "Note: with k dead slaves the faulty component's own slave is dead in\n"
      "k/4 of the trials (rotation), bounding 'localized' at %.2f for k=1.\n",
      0.75);
  return 0;
}
