// Ablation study of FChain's design decisions (DESIGN.md §5).
//
// Each ablation disables exactly one ingredient of the pipeline and re-runs
// three representative faults:
//
//   no-predictability : outlier change points pass unfiltered (PAL-like
//                       selection, but keeping dependency refinement)
//   no-dependency     : chronology only (spurious sibling propagation is
//                       never split)
//   no-rollback       : the anchor change point is used as the onset
//                       directly (gradual faults get late onsets)
//   no-persistence    : decayed transients are eligible again
//   earliest-anchor   : anchor on the earliest passing change point instead
//                       of the strongest signature
//   no-external-check : external factors get blamed on components
//
// Representative faults: RUBiS/MemLeak (gradual, back-pressure),
// RUBiS/OffloadBug (concurrent siblings: needs dependency refinement), and
// Hadoop/ConcDiskHog (slow manifestation, bursty metrics).
#include "bench_util.h"

using namespace fchain;

namespace {

struct Ablation {
  const char* name;
  void (*apply)(core::FChainConfig&);
};

const Ablation kAblations[] = {
    {"full FChain", [](core::FChainConfig&) {}},
    {"no-predictability",
     [](core::FChainConfig& c) { c.use_predictability = false; }},
    {"no-dependency", [](core::FChainConfig& c) { c.use_dependency = false; }},
    {"no-rollback", [](core::FChainConfig& c) { c.use_rollback = false; }},
    {"no-persistence",
     [](core::FChainConfig& c) { c.persistence_fraction = 0.0; }},
    {"earliest-anchor",
     [](core::FChainConfig& c) { c.select_strongest = false; }},
    {"no-external-check",
     [](core::FChainConfig& c) { c.detect_external_factor = false; }},
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parseArgs(argc, argv);
  std::printf("Ablation study: contribution of each FChain ingredient\n");
  std::printf("(%zu trials per fault, base seed %llu)\n\n", args.trials,
              static_cast<unsigned long long>(args.seed));

  const std::vector<eval::FaultCase> cases = {
      eval::rubisMemLeak(), eval::rubisOffloadBug(), eval::hadoopConcDiskHog()};

  for (const auto& fault_case : cases) {
    eval::TrialOptions options;
    options.trials = args.trials;
    options.base_seed = args.seed;
    const auto set = eval::generateTrials(fault_case, options);
    if (set.trials.empty()) continue;

    std::printf("== %s (%zu trials) ==\n", fault_case.label.c_str(),
                set.trials.size());
    for (const auto& ablation : kAblations) {
      core::FChainConfig config = fault_case.fchain_config;
      ablation.apply(config);
      eval::Counts counts;
      for (const auto& trial : set.trials) {
        const auto verdict = core::localizeRecord(
            trial.record, &trial.discovered, config);
        counts.accumulate(verdict.pinpointed, trial.record.ground_truth);
      }
      std::printf("  %-20s P=%.3f R=%.3f F1=%.3f (tp=%zu fp=%zu fn=%zu)\n",
                  ablation.name, counts.precision(), counts.recall(),
                  counts.f1(), counts.tp, counts.fp, counts.fn);
    }
    std::printf("\n");
  }
  return 0;
}
