// Reproduces paper Table I: sensitivity of FChain's accuracy to its two key
// parameters — the look-back window W (100/300/500 s) and the concurrency
// threshold (2/5/10 s) — on NetHog (RUBiS), CpuHog (System S) and DiskHog
// (Hadoop).
//
// Expected shape: the defaults (W=100, threshold=2 s) are optimal or near
// optimal everywhere except the Hadoop DiskHog, whose slow manifestation
// needs the longer W=500 window (W=100 misses the onset of the fault and
// accuracy drops sharply) — exactly the paper's observation.
#include "bench_util.h"

using namespace fchain;

namespace {

eval::Counts scoreCase(const eval::FaultCase& base_case,
                       const core::FChainConfig& config,
                       const benchutil::Args& args) {
  eval::FaultCase fault_case = base_case;
  fault_case.fchain_config = config;
  eval::TrialOptions options;
  options.trials = args.trials;
  options.base_seed = args.seed;
  const auto set = eval::generateTrials(fault_case, options);

  baselines::FChainScheme scheme(config);
  eval::Counts counts;
  for (const auto& trial : set.trials) {
    counts.accumulate(
        scheme.localize(eval::inputFor(trial), scheme.defaultThreshold()),
        trial.record.ground_truth);
  }
  return counts;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parseArgs(argc, argv);
  std::printf(
      "Table I: FChain sensitivity to look-back window W and concurrency "
      "threshold\n(%zu trials per cell, base seed %llu)\n\n",
      args.trials, static_cast<unsigned long long>(args.seed));

  const std::vector<eval::FaultCase> cases = {
      eval::rubisNetHog(), eval::systemsCpuHog(), eval::hadoopConcDiskHog()};

  std::printf("%-28s", "look-back window W (sec)");
  for (const auto& fault_case : cases) {
    std::printf(" | %-20s", fault_case.label.c_str());
  }
  std::printf("\n");
  for (TimeSec window : {100, 300, 500}) {
    std::printf("%-28lld", static_cast<long long>(window));
    for (const auto& fault_case : cases) {
      core::FChainConfig config = fault_case.fchain_config;
      config.lookback_sec = window;
      const auto counts = scoreCase(fault_case, config, args);
      std::printf(" | P=%.2f R=%.2f      ", counts.precision(),
                  counts.recall());
    }
    std::printf("\n");
  }

  std::printf("\n%-28s", "concurrency threshold (sec)");
  for (const auto& fault_case : cases) {
    std::printf(" | %-20s", fault_case.label.c_str());
  }
  std::printf("\n");
  for (TimeSec threshold : {2, 5, 10}) {
    std::printf("%-28lld", static_cast<long long>(threshold));
    for (const auto& fault_case : cases) {
      core::FChainConfig config = fault_case.fchain_config;
      config.concurrency_threshold_sec = threshold;
      const auto counts = scoreCase(fault_case, config, args);
      std::printf(" | P=%.2f R=%.2f      ", counts.precision(),
                  counts.recall());
    }
    std::printf("\n");
  }
  return 0;
}
