// Fleet-scale localization benchmark: components-per-second through the
// sharded master tier (fleet/fleet.h) as the shard count grows.
//
// A synthetic fleet — default 1200 components spread over 24 applications
// on 16 slave hosts — is ingested once: every component streams all six
// metrics (diurnal baseline + per-component noise), and one component per
// application takes a level-shift fault shortly before the violation
// instant. The same warmed slaves then back a FleetMaster at N in
// {1, 2, 4, 8} shards, and every application is localized at its violation
// time. Reported per shard count:
//
//   components_per_sec  — components routed through localize() per wall
//                         second across the whole app sweep (the ROADMAP's
//                         fleet scaling metric)
//   faulty_found        — apps whose injected component was pinpointed
//
// Every number lands in bench_fleet_scale.json so CI can archive the
// scaling curve and gate on the floor.
//
// Exit status is a gate, not just a report: nonzero when any shard count's
// per-app results diverge from the single-shard reference (the identity
// contract the golden suite pins, re-checked here at fleet scale), when
// localization misses the injected fault in too many apps, or when the
// best components-per-second falls below `floor_cps`.
//
// Usage: bench_fleet_scale [components] [apps] [floor_cps] [seed]
#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fchain/slave.h"
#include "fleet/fleet.h"
#include "netdep/dependency.h"

namespace {

using namespace fchain;

constexpr std::size_t kHosts = 16;
constexpr TimeSec kTicks = 1500;
constexpr TimeSec kFaultStart = 1300;
constexpr TimeSec kViolation = 1330;

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct SyntheticFleet {
  std::vector<std::unique_ptr<core::FChainSlave>> slaves;
  /// Component id ranges per application: [first, first + count).
  std::vector<std::pair<ComponentId, std::size_t>> apps;
  std::vector<ComponentId> faulty;  ///< one injected component per app
};

/// Streams kTicks seconds of telemetry for every component into its host
/// slave. Healthy components follow a diurnal baseline with per-component
/// phase and noise; each app's designated faulty component level-shifts its
/// cpu and memory metrics at kFaultStart — the canonical resource-fault
/// shape the change-point chain detects.
SyntheticFleet buildFleet(std::size_t components, std::size_t apps,
                          std::uint64_t seed) {
  SyntheticFleet fleet;
  for (std::size_t h = 0; h < kHosts; ++h) {
    fleet.slaves.push_back(
        std::make_unique<core::FChainSlave>(static_cast<HostId>(h)));
  }
  const std::size_t per_app = components / apps;
  for (std::size_t a = 0; a < apps; ++a) {
    const ComponentId first = static_cast<ComponentId>(a * per_app);
    const std::size_t count =
        (a + 1 == apps) ? components - first : per_app;
    fleet.apps.emplace_back(first, count);
    fleet.faulty.push_back(first +
                           static_cast<ComponentId>((a * 7) % count));
  }
  for (ComponentId id = 0; id < components; ++id) {
    fleet.slaves[id % kHosts]->addComponent(id, 0);
  }

  std::vector<bool> is_faulty(components, false);
  for (const ComponentId id : fleet.faulty) is_faulty[id] = true;

  for (ComponentId id = 0; id < components; ++id) {
    Rng rng(mixSeed(seed, 0xf1ee7, id));
    const double phase = rng.uniform(0.0, 6.28);
    std::array<double, kMetricCount> base{};
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      base[m] = rng.uniform(20.0, 45.0);
    }
    core::FChainSlave& slave = *fleet.slaves[id % kHosts];
    for (TimeSec t = 0; t < kTicks; ++t) {
      std::array<double, kMetricCount> sample{};
      const double diurnal =
          3.0 * std::sin(2.0 * 3.14159265 * static_cast<double>(t) / 300.0 +
                         phase);
      for (std::size_t m = 0; m < kMetricCount; ++m) {
        sample[m] = base[m] + diurnal + rng.uniform(-1.0, 1.0);
      }
      if (is_faulty[id] && t >= kFaultStart) {
        // Ramp to a sustained level shift over ~8 s, cpu + memory.
        const double ramp =
            std::min(1.0, static_cast<double>(t - kFaultStart) / 8.0);
        sample[metricIndex(MetricKind::CpuUsage)] += 30.0 * ramp;
        sample[metricIndex(MetricKind::MemoryUsage)] += 25.0 * ramp;
      }
      slave.ingest(id, sample);
    }
  }
  return fleet;
}

/// Stable one-line digest of a pinpoint result, for the cross-shard-count
/// identity gate (the full rendering lives in the test tier; the bench only
/// needs equality).
std::string digest(const core::PinpointResult& result) {
  std::ostringstream out;
  out << (result.external_factor ? "ext" : "int") << "|c="
      << result.coverage << "|p=";
  for (const ComponentId id : result.pinpointed) out << id << ',';
  out << "|chain=";
  for (const auto& finding : result.chain) {
    out << finding.component << '@' << finding.onset << '#'
        << finding.metrics.size() << ';';
  }
  return out.str();
}

struct CurvePoint {
  std::size_t shards = 0;
  double wall_ms = 0.0;
  double components_per_sec = 0.0;
  std::size_t faulty_found = 0;
  bool identical = true;
};

CurvePoint runShardCount(const SyntheticFleet& fleet, std::size_t components,
                         std::size_t shards,
                         const netdep::DependencyGraph& deps,
                         std::vector<std::string>* reference) {
  fleet::FleetConfig config;
  config.shards = shards;
  // Cross-shard fan-out on as many threads as there are shards — the
  // deployment shape the tier exists for (N independent masters).
  config.fleet_threads = shards > 1 ? static_cast<int>(shards) : 0;
  fleet::FleetMaster master(config);
  for (const auto& slave : fleet.slaves) master.addSlave(slave.get());
  master.setDependencies(deps);

  CurvePoint point;
  point.shards = shards;
  std::vector<core::PinpointResult> results;
  results.reserve(fleet.apps.size());

  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& [first, count] : fleet.apps) {
    std::vector<ComponentId> app_components(count);
    for (std::size_t i = 0; i < count; ++i) {
      app_components[i] = first + static_cast<ComponentId>(i);
    }
    results.push_back(master.localize(app_components, kViolation));
  }
  point.wall_ms = msSince(t0);
  point.components_per_sec =
      static_cast<double>(components) / (point.wall_ms / 1000.0);

  for (std::size_t a = 0; a < fleet.apps.size(); ++a) {
    const auto& pinpointed = results[a].pinpointed;
    if (std::find(pinpointed.begin(), pinpointed.end(), fleet.faulty[a]) !=
        pinpointed.end()) {
      ++point.faulty_found;
    }
    const std::string d = digest(results[a]);
    if (reference->size() <= a) {
      reference->push_back(d);
    } else if ((*reference)[a] != d) {
      point.identical = false;
      std::fprintf(stderr,
                   "identity violation: app %zu at %zu shards\n  ref: %s\n"
                   "  got: %s\n",
                   a, shards, (*reference)[a].c_str(), d.c_str());
    }
  }
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t components = 1200;
  std::size_t apps = 24;
  double floor_cps = 0.0;
  std::uint64_t seed = 42;
  if (argc > 1) components = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) apps = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) floor_cps = std::strtod(argv[3], nullptr);
  if (argc > 4) seed = std::strtoull(argv[4], nullptr, 10);
  if (apps == 0 || components < apps) {
    std::fprintf(stderr, "need components >= apps >= 1\n");
    return 2;
  }

  std::printf("Fleet-scale sharded localization\n");
  std::printf("(%zu components, %zu apps, %zu hosts, %lld ingested ticks, "
              "seed %llu)\n\n",
              components, apps, kHosts, static_cast<long long>(kTicks),
              static_cast<unsigned long long>(seed));

  const auto t_ingest = std::chrono::steady_clock::now();
  const SyntheticFleet fleet = buildFleet(components, apps, seed);
  std::printf("ingest: %.0f ms (shared across shard counts)\n\n",
              msSince(t_ingest));

  const netdep::DependencyGraph deps{components};
  std::vector<std::string> reference;
  std::vector<CurvePoint> curve;
  std::printf("%8s %12s %18s %14s %10s\n", "shards", "wall ms",
              "components/s", "faulty found", "identical");
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    curve.push_back(
        runShardCount(fleet, components, shards, deps, &reference));
    const CurvePoint& p = curve.back();
    std::printf("%8zu %12.1f %18.0f %10zu/%zu %10s\n", p.shards, p.wall_ms,
                p.components_per_sec, p.faulty_found, apps,
                p.identical ? "yes" : "NO");
  }

  double best_cps = 0.0;
  bool all_identical = true;
  std::size_t min_found = apps;
  for (const CurvePoint& p : curve) {
    best_cps = std::max(best_cps, p.components_per_sec);
    all_identical = all_identical && p.identical;
    min_found = std::min(min_found, p.faulty_found);
  }

  std::ofstream out("bench_fleet_scale.json",
                    std::ios::binary | std::ios::trunc);
  out << "{\n  \"components\": " << components << ",\n  \"apps\": " << apps
      << ",\n  \"hosts\": " << kHosts << ",\n  \"ticks\": " << kTicks
      << ",\n  \"seed\": " << seed
      << ",\n  \"floor_components_per_sec\": " << floor_cps
      << ",\n  \"best_components_per_sec\": " << best_cps
      << ",\n  \"curve\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const CurvePoint& p = curve[i];
    out << "    {\"shards\": " << p.shards << ", \"wall_ms\": " << p.wall_ms
        << ", \"components_per_sec\": " << p.components_per_sec
        << ", \"faulty_found\": " << p.faulty_found
        << ", \"identical\": " << (p.identical ? "true" : "false") << "}"
        << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("\nwrote bench_fleet_scale.json\n");

  if (!all_identical) {
    std::printf("FAIL: shard counts disagree — the partitioned-replay "
                "identity contract is broken at fleet scale\n");
    return 1;
  }
  // The level shift is unambiguous; every shard layout must find nearly all
  // of them (leave slack for boundary effects of the synthetic stream).
  if (min_found * 10 < apps * 9) {
    std::printf("FAIL: only %zu/%zu injected faults pinpointed\n", min_found,
                apps);
    return 1;
  }
  if (floor_cps > 0.0 && best_cps < floor_cps) {
    std::printf("FAIL: best throughput %.0f components/s is below the floor "
                "%.0f\n",
                best_cps, floor_cps);
    return 1;
  }
  return 0;
}
