// Reproduces paper Fig. 3: abnormal change point selection on a Hadoop run
// with a map-side fault. The common "CUSUM + Bootstrap" detector finds many
// change points on both the faulty map node's DiskWrite metric and a normal
// reduce node's CPU metric — most are random peaks from Hadoop's bursty
// execution. FChain's filters (outlier magnitude, persistence, and the
// predictability test against the burstiness-derived expected error) keep
// only the true abnormal change on the faulty map and discard every point on
// the normal reduce.
#include <cstdio>

#include "bench_util.h"
#include "signal/outlier.h"
#include "signal/smoothing.h"

using namespace fchain;

namespace {

void analyzeMetric(const char* label, const sim::RunRecord& record,
                   ComponentId component, MetricKind kind,
                   const core::FChainConfig& config) {
  const TimeSec tv = *record.violation_time;
  const auto& series = record.metrics[component].of(kind);
  const TimeSec from = std::max(series.startTime(), tv - config.lookback_sec);
  const auto raw = series.window(from, tv + 1);
  const auto smoothed =
      signal::movingAverage(raw, config.smooth_half_window);

  const auto points = signal::detectChangePoints(smoothed, config.cusum);
  const auto outliers = signal::outlierChangePoints(points, config.outlier);

  const auto model = core::replayModel(record.metrics[component], tv + 1,
                                       config.predictor);
  core::AbnormalChangeSelector selector(config);
  const auto finding =
      selector.analyzeMetric(kind, series, model.errorsOf(kind), tv);

  std::printf("--- %s (%s of %s), window [%lld, %lld] ---\n", label,
              std::string(metricName(kind)).c_str(),
              record.app_spec.components[component].name.c_str(),
              static_cast<long long>(from), static_cast<long long>(tv));
  std::printf("CUSUM+Bootstrap change points: %zu at t = {", points.size());
  for (const auto& point : points) {
    std::printf(" %lld", static_cast<long long>(
                             from + static_cast<TimeSec>(point.index)));
  }
  std::printf(" }\n");
  std::printf("outlier-magnitude survivors:   %zu\n", outliers.size());
  if (finding.has_value()) {
    std::printf(
        "FChain selection: ABNORMAL change point at t=%lld (onset %lld), "
        "prediction error %.2f > expected %.2f\n",
        static_cast<long long>(finding->change_point),
        static_cast<long long>(finding->onset), finding->prediction_error,
        finding->expected_error);
  } else {
    std::printf("FChain selection: none (all change points are normal "
                "workload fluctuation)\n");
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parseArgs(argc, argv);
  std::printf("Figure 3: change point selection on a Hadoop map-side fault "
              "(seed %llu)\n\n",
              static_cast<unsigned long long>(args.seed));

  // One Hadoop run with the slow map-side disk fault (W = 500 as in the
  // paper's DiskHog configuration).
  eval::FaultCase fault_case = eval::hadoopConcDiskHog();
  eval::TrialOptions options;
  options.trials = 1;
  options.base_seed = args.seed;
  const auto set = eval::generateTrials(fault_case, options);
  if (set.trials.empty()) {
    std::printf("no SLO violation in the sampled run; try another seed\n");
    return 0;
  }
  const auto& record = set.trials.front().record;

  // Faulty map's DiskWrite vs a normal reduce's CPU usage (paper Fig. 3).
  analyzeMetric("faulty map node", record, /*map1=*/0, MetricKind::DiskWrite,
                fault_case.fchain_config);
  analyzeMetric("normal reduce node", record, /*red1=*/3,
                MetricKind::CpuUsage, fault_case.fchain_config);

  // Component-level verdicts: which metric carries the abnormal change on
  // the faulty map, and that the normal reduce stays clean across all six.
  const TimeSec tv = *record.violation_time;
  core::AbnormalChangeSelector selector(fault_case.fchain_config);
  const auto map_model = core::replayModel(record.metrics[0], tv + 1,
                                           fault_case.fchain_config.predictor);
  const auto map_finding =
      selector.analyzeComponent(0, record.metrics[0], map_model, tv);
  if (map_finding.has_value()) {
    std::printf("faulty map verdict: ABNORMAL, onset t=%lld via",
                static_cast<long long>(map_finding->onset));
    for (const auto& metric : map_finding->metrics) {
      std::printf(" %s", std::string(metricName(metric.metric)).c_str());
    }
    std::printf("\n");
  } else {
    std::printf("faulty map verdict: (not flagged in this run)\n");
  }
  const auto red_model = core::replayModel(record.metrics[3], tv + 1,
                                           fault_case.fchain_config.predictor);
  const auto red_finding =
      selector.analyzeComponent(3, record.metrics[3], red_model, tv);
  std::printf("normal reduce verdict: %s\n",
              red_finding.has_value() ? "flagged (false alarm)" : "normal");
  return 0;
}
