// Reproduces paper Fig. 6: fault localization accuracy (precision/recall
// ROC) for the RUBiS single-component faults — MemLeak, CpuHog and NetHog —
// across FChain, Histogram, NetMedic, Topology, Dependency and PAL.
//
// Expected shape: FChain dominates; Topology/Dependency collapse on the two
// db-side faults (back-pressure makes them blame the upstream tier) but do
// fine on NetHog (first tier, no back-pressure); Histogram struggles on the
// fast-manifesting CpuHog/NetHog; NetMedic suffers from unseen states.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fchain;
  return benchutil::runFigure(
      "Figure 6: RUBiS single-component fault localization accuracy",
      {eval::rubisMemLeak(), eval::rubisCpuHog(), eval::rubisNetHog()}, argc,
      argv);
}
