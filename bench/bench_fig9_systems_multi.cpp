// Reproduces paper Fig. 9: System S multi-component concurrent faults —
// MemLeak and CpuHog injected simultaneously into two randomly selected PEs.
//
// Expected shape: FChain does well on ConcMemLeak; ConcCpuHog is the paper's
// own documented weak spot (smoothing can flip the onset order between a
// propagated component and a true culprit, §III-C).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fchain;
  return benchutil::runFigure(
      "Figure 9: System S multi-component concurrent fault localization "
      "accuracy",
      {eval::systemsConcMemLeak(), eval::systemsConcCpuHog()}, argc, argv);
}
