// Reproduces paper Fig. 10: Hadoop multi-component concurrent faults — a
// memory leak, an infinite-loop bug, and a Domain-0 disk hog injected into
// all three map nodes at once.
//
// Expected shape: maps are the first tier, so Topology/Dependency do well
// here (no back-pressure inversion); PAL suffers from Hadoop's bursty
// metrics; NetMedic's default-impact guess happens to be right for
// MemLeak/CpuHog but wrong for DiskHog; FChain stays high everywhere,
// using the longer 500 s look-back window for the slow-manifesting DiskHog.
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fchain;
  return benchutil::runFigure(
      "Figure 10: Hadoop multi-component concurrent fault localization "
      "accuracy",
      {eval::hadoopConcMemLeak(), eval::hadoopConcCpuHog(),
       eval::hadoopConcDiskHog()},
      argc, argv);
}
