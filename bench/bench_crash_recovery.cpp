// Crash-recovery benchmark: what checkpointing costs and what a crash
// costs. Two parts:
//
//   1. Snapshot/restore microbench — capture+encode, atomic save, and
//      load+decode+restore wall time (plus snapshot size) for a slave
//      carrying one hour of learned state across four VMs.
//
//   2. Accuracy — repeated RUBiS CpuHog incidents, each localized twice:
//      a baseline run (no crash) and a run where the slave hosting one
//      component (rotating across trials) crashes 40 s before the SLO
//      violation and a replacement recovers from snapshot + journal 20 s
//      later. The dead window's samples are lost (gap-filled on the next
//      ingest); everything before the crash is replayed from disk. The
//      acceptance bar: post-restart localization accuracy within 5 % of
//      the uncrashed baseline.
//
// Usage: bench_crash_recovery [trials] [base_seed]
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <vector>

#include "fchain/fchain.h"
#include "fchain/recovery.h"
#include "persist/snapshot.h"
#include "sim/injector.h"
#include "sim/simulator.h"

namespace {

using namespace fchain;

constexpr ComponentId kFaulty = 3;  // RUBiS db VM
constexpr std::size_t kComponents = 4;

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// --- Part 1: snapshot/restore cost ----------------------------------------

void benchSnapshotRestore() {
  core::FChainSlave slave(0);
  for (ComponentId id = 0; id < 4; ++id) slave.addComponent(id, 0);
  for (TimeSec t = 0; t < 3600; ++t) {
    std::array<double, kMetricCount> sample{};
    for (std::size_t m = 0; m < kMetricCount; ++m) {
      sample[m] = 0.5 + 0.3 * std::sin(0.05 * static_cast<double>(t) +
                                       static_cast<double>(m));
    }
    for (ComponentId id = 0; id < 4; ++id) slave.ingestAt(id, t, sample);
  }

  const std::string dir = std::filesystem::temp_directory_path().string() +
                          "/fchain_bench_crash";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/bench.snap";

  constexpr int kReps = 20;
  double capture_ms = 0.0, save_ms = 0.0, restore_ms = 0.0;
  std::size_t bytes = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    const persist::SlaveSnapshot snap = slave.snapshot(1);
    const auto encoded = persist::encodeSlaveSnapshot(snap);
    capture_ms += msSince(t0);
    bytes = encoded.size();

    t0 = std::chrono::steady_clock::now();
    persist::saveSlaveSnapshot(path, snap);
    save_ms += msSince(t0);

    t0 = std::chrono::steady_clock::now();
    const persist::SlaveSnapshot loaded = persist::loadSlaveSnapshot(path);
    core::FChainSlave restored = core::FChainSlave::fromSnapshot(loaded);
    restore_ms += msSince(t0);
    if (restored.components().size() != 4) std::abort();
  }

  std::printf("Part 1: snapshot/restore cost (4 VMs x 3600 s history)\n");
  std::printf("  %-28s %8.2f ms\n", "capture + encode",
              capture_ms / kReps);
  std::printf("  %-28s %8.2f ms\n", "save (atomic rename)", save_ms / kReps);
  std::printf("  %-28s %8.2f ms\n", "load + decode + restore",
              restore_ms / kReps);
  std::printf("  %-28s %8zu bytes (%.1f KiB/VM)\n\n", "snapshot size", bytes,
              static_cast<double>(bytes) / 4.0 / 1024.0);
  std::filesystem::remove_all(dir);
}

// --- Part 2: post-restart accuracy ----------------------------------------

struct Incident {
  sim::RunRecord record;
  TimeSec tv = 0;
};

std::optional<Incident> simulateIncident(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.kind = sim::AppKind::Rubis;
  config.seed = seed;
  faults::FaultSpec fault;
  fault.type = faults::FaultType::CpuHog;
  fault.targets = {kFaulty};
  fault.start_time = 2000;
  fault.intensity = 1.35;
  config.faults = {fault};
  auto result = sim::runScenario(config);
  if (!result.record.violation_time.has_value()) return std::nullopt;
  return Incident{std::move(result.record), *result.record.violation_time};
}

struct TrialOutcome {
  bool localized = false;
  double coverage = 0.0;
  double recover_ms = 0.0;  ///< wall time of SlaveCheckpointer::recover
};

/// Replays one incident into four single-VM slaves and localizes. With
/// `crash`, the slave hosting component `crash_host` dies 40 s before the
/// violation and recovers from its checkpoint 20 s later; the dead window's
/// samples are lost and gap-filled.
TrialOutcome runTrial(const Incident& incident, bool crash,
                      ComponentId crash_host, const std::string& dir) {
  sim::CrashInjector injector;
  if (crash) {
    injector.add({static_cast<HostId>(crash_host), incident.tv - 40,
                  incident.tv - 20});
  }

  std::vector<std::unique_ptr<core::FChainSlave>> slaves;
  std::vector<std::unique_ptr<core::SlaveCheckpointer>> checkpointers(
      kComponents);
  for (ComponentId id = 0; id < kComponents; ++id) {
    const MetricSeries& recorded = incident.record.metrics[id];
    const TimeSec start =
        recorded.endTime() - static_cast<TimeSec>(recorded.size());
    auto slave = std::make_unique<core::FChainSlave>(id);
    slave->addComponent(id, start);
    if (crash) {
      const std::string host_dir = dir + "/h" + std::to_string(id);
      std::filesystem::create_directories(host_dir);
      checkpointers[id] = std::make_unique<core::SlaveCheckpointer>(
          *slave, host_dir);
    }
    slaves.push_back(std::move(slave));
  }

  TrialOutcome outcome;
  const MetricSeries& clock = incident.record.metrics[0];
  const TimeSec start = clock.endTime() - static_cast<TimeSec>(clock.size());
  for (TimeSec t = start; t < clock.endTime(); ++t) {
    for (ComponentId id = 0; id < kComponents; ++id) {
      const auto host = static_cast<HostId>(id);
      if (crash && injector.restartsAt(host, t)) {
        const std::string host_dir = dir + "/h" + std::to_string(id);
        const auto t0 = std::chrono::steady_clock::now();
        auto recovered = core::SlaveCheckpointer::recover(host_dir, host);
        outcome.recover_ms = msSince(t0);
        slaves[id] = std::make_unique<core::FChainSlave>(
            std::move(recovered.slave));
        checkpointers[id] = std::make_unique<core::SlaveCheckpointer>(
            *slaves[id], host_dir);
      }
      if (crash && !checkpointers[id]) continue;  // process is down
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = incident.record.metrics[id].of(kind).at(t);
      }
      if (crash) {
        checkpointers[id]->ingestAt(id, t, sample);
      } else {
        slaves[id]->ingestAt(id, t, sample);
      }
      if (crash && injector.crashesAt(host, t)) {
        checkpointers[id].reset();
        slaves[id].reset();
      }
    }
  }

  core::FChainMaster master;
  for (ComponentId id = 0; id < kComponents; ++id) {
    master.registerSlave(slaves[id].get());
  }
  const auto verdict = master.localize({0, 1, 2, 3}, incident.tv);
  outcome.coverage = verdict.coverage;
  for (ComponentId id : verdict.pinpointed) {
    if (id == kFaulty) outcome.localized = true;
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t trials = 10;
  std::uint64_t seed = 42;
  if (argc > 1) trials = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);

  std::printf("Crash recovery: checkpoint cost and post-restart accuracy\n");
  std::printf("(RUBiS CpuHog on db, %zu trials, base seed %llu)\n\n", trials,
              static_cast<unsigned long long>(seed));

  benchSnapshotRestore();

  std::vector<Incident> incidents;
  for (std::size_t trial = 0; incidents.size() < trials && trial < 4 * trials;
       ++trial) {
    if (auto incident = simulateIncident(mixSeed(seed, 0xc4a5, trial))) {
      incidents.push_back(std::move(*incident));
    }
  }
  if (incidents.empty()) {
    std::printf("no trial produced an SLO violation\n");
    return 1;
  }

  const std::string dir = std::filesystem::temp_directory_path().string() +
                          "/fchain_bench_crash_trials";
  double base_localized = 0.0, base_coverage = 0.0;
  double crash_localized = 0.0, crash_coverage = 0.0, recover_ms = 0.0;
  for (std::size_t trial = 0; trial < incidents.size(); ++trial) {
    const auto baseline =
        runTrial(incidents[trial], /*crash=*/false, 0, dir);
    // The crashing host rotates, so in 1/4 of trials it is the faulty VM's
    // own slave — the hard case where its learned state matters most.
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    const auto crashed =
        runTrial(incidents[trial], /*crash=*/true,
                 static_cast<ComponentId>(trial % kComponents), dir);
    base_localized += baseline.localized ? 1.0 : 0.0;
    base_coverage += baseline.coverage;
    crash_localized += crashed.localized ? 1.0 : 0.0;
    crash_coverage += crashed.coverage;
    recover_ms += crashed.recover_ms;
  }
  std::filesystem::remove_all(dir);

  const auto n = static_cast<double>(incidents.size());
  std::printf(
      "Part 2: accuracy, crash at tv-40 / recover at tv-20, rotating host\n");
  std::printf("  (%zu incidents with SLO violations)\n", incidents.size());
  std::printf("  %-22s %-10s %s\n", "", "localized", "coverage");
  std::printf("  %-22s %-10.2f %.2f\n", "baseline (no crash)",
              base_localized / n, base_coverage / n);
  std::printf("  %-22s %-10.2f %.2f   (mean recover %.2f ms)\n",
              "crash + warm restart", crash_localized / n, crash_coverage / n,
              recover_ms / n);
  const double delta =
      std::fabs(base_localized - crash_localized) / (n > 0 ? n : 1.0);
  std::printf("  accuracy delta %.1f%% (acceptance bar: within 5%%)\n",
              delta * 100.0);
  return delta <= 0.05 ? 0 : 1;
}
