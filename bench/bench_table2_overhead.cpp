// Reproduces paper Table II: CPU cost of each FChain module, measured with
// google-benchmark.
//
//   paper (Xen testbed)                      | this reproduction measures
//   VM monitoring (6 attrs)   1.03 ms        | ingest of one 6-metric sample
//   fluctuation modeling      22.9 ms / 1000 | 1000 predictor updates
//   change point selection    602 ms / 100   | one component, W=100 window
//   integrated diagnosis      22 us          | pinpoint() over findings
//   online validation         ~30 s / comp.  | one what-if scaling probe
//
// Absolute numbers differ (the paper's monitoring cost is dominated by
// libxenstat hypercalls; ours is in-memory), but the *ordering* holds:
// selection is the heavy module, diagnosis is microseconds, validation is
// dominated by the observation period (30 simulated seconds, here replayed
// faster than real time).
#include <benchmark/benchmark.h>

#include "eval/runner.h"
#include "fchain/fchain.h"

using namespace fchain;

namespace {

/// One shared System S Bottleneck incident for the analysis benchmarks.
const eval::TrialSet& trialSet() {
  static const eval::TrialSet set = [] {
    eval::TrialOptions options;
    options.trials = 1;
    options.base_seed = 42;
    options.keep_snapshots = true;
    return eval::generateTrials(eval::systemsBottleneck(), options);
  }();
  return set;
}

void BM_VmMonitoringIngest(benchmark::State& state) {
  core::FChainSlave slave(/*host=*/0);
  slave.addComponent(0, 0);
  std::array<double, kMetricCount> sample{42.0, 900.0, 200.0,
                                          180.0, 30.0,  60.0};
  for (auto _ : state) {
    sample[0] += 0.001;  // avoid a constant-input fast path
    slave.ingest(0, sample);
  }
}
BENCHMARK(BM_VmMonitoringIngest);

void BM_FluctuationModeling1000(benchmark::State& state) {
  const auto& trial = trialSet().trials.front();
  const auto& series = trial.record.metrics[1];
  for (auto _ : state) {
    core::NormalFluctuationModel model(series.of(MetricKind::CpuUsage)
                                           .startTime());
    for (TimeSec t = 0; t < 1000; ++t) {
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = series.of(kind).at(t);
      }
      model.observe(sample);
    }
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_FluctuationModeling1000);

void BM_ChangePointSelection100(benchmark::State& state) {
  const auto& trial = trialSet().trials.front();
  const TimeSec tv = *trial.record.violation_time;
  core::FChainConfig config;  // W = 100
  core::AbnormalChangeSelector selector(config);
  const auto model =
      core::replayModel(trial.record.metrics[1], tv + 1, config.predictor);
  for (auto _ : state) {
    auto finding =
        selector.analyzeComponent(1, trial.record.metrics[1], model, tv);
    benchmark::DoNotOptimize(finding);
  }
}
BENCHMARK(BM_ChangePointSelection100);

void BM_IntegratedDiagnosis(benchmark::State& state) {
  const auto& trial = trialSet().trials.front();
  const TimeSec tv = *trial.record.violation_time;
  core::FChainConfig config;
  core::AbnormalChangeSelector selector(config);
  std::vector<core::ComponentFinding> findings;
  for (ComponentId id = 0; id < trial.record.metrics.size(); ++id) {
    const auto model =
        core::replayModel(trial.record.metrics[id], tv + 1, config.predictor);
    if (auto finding =
            selector.analyzeComponent(id, trial.record.metrics[id], model, tv)) {
      findings.push_back(*finding);
    }
  }
  core::IntegratedPinpointer pinpointer(config);
  for (auto _ : state) {
    auto result = pinpointer.pinpoint(findings, trial.record.metrics.size(),
                                      &trial.discovered);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_IntegratedDiagnosis);

void BM_OnlineValidationPerComponent(benchmark::State& state) {
  const auto& trial = trialSet().trials.front();
  core::FChainConfig config;
  const auto result =
      core::localizeRecord(trial.record, &trial.discovered, config);
  core::OnlineValidator validator;
  const auto& finding = result.chain.front();
  for (auto _ : state) {
    bool confirmed =
        validator.validateComponent(*trial.snapshot, finding);
    benchmark::DoNotOptimize(confirmed);
  }
  // The paper's 30 s figure is observation time; we replay those 30
  // simulated seconds (twice: scaled + control) in the time shown here.
  state.SetLabel("replays 2x30 simulated seconds");
}
BENCHMARK(BM_OnlineValidationPerComponent);

}  // namespace

BENCHMARK_MAIN();
