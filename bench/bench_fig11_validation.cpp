// Reproduces paper Fig. 11: online pinpointing validation effectiveness for
// the two most challenging System S faults — Bottleneck and concurrent
// CpuHog. "FChain+VAL" re-checks every pinpointed component by scaling its
// fault-related resource on a copy of the simulation snapshot taken at
// violation time and watching the SLO.
//
// Expected shape: validation removes most of the false alarms (precision
// jumps), but cannot recover missed components (recall unchanged or lower —
// the paper notes the same limitation).
#include "bench_util.h"
#include "fchain/validation.h"

using namespace fchain;

namespace {

void runValidationCase(const eval::FaultCase& fault_case,
                       const benchutil::Args& args) {
  eval::TrialOptions options;
  options.trials = args.trials;
  options.base_seed = args.seed;
  options.keep_snapshots = true;
  const auto set = eval::generateTrials(fault_case, options);
  if (set.trials.empty()) {
    std::printf("== %s: no trial produced an SLO violation ==\n\n",
                fault_case.label.c_str());
    return;
  }

  const core::FChainConfig& config = fault_case.fchain_config;
  core::IntegratedPinpointer pinpointer(config);
  core::AbnormalChangeSelector selector(config);
  core::OnlineValidator validator;

  eval::Counts plain_counts;
  eval::Counts validated_counts;
  for (const auto& trial : set.trials) {
    const auto result = core::localizeRecord(
        trial.record, &trial.discovered, config);
    plain_counts.accumulate(result.pinpointed, trial.record.ground_truth);

    std::vector<ComponentId> validated = result.pinpointed;
    if (trial.snapshot.has_value() && !result.pinpointed.empty()) {
      validated = validator.validate(*trial.snapshot, result);
    }
    validated_counts.accumulate(validated, trial.record.ground_truth);
  }

  std::printf("== %s (%zu trials) ==\n", fault_case.label.c_str(),
              set.trials.size());
  std::printf("%-12s  P=%.3f  R=%.3f  (tp=%zu fp=%zu fn=%zu)\n", "FChain",
              plain_counts.precision(), plain_counts.recall(),
              plain_counts.tp, plain_counts.fp, plain_counts.fn);
  std::printf("%-12s  P=%.3f  R=%.3f  (tp=%zu fp=%zu fn=%zu)\n\n",
              "FChain+VAL", validated_counts.precision(),
              validated_counts.recall(), validated_counts.tp,
              validated_counts.fp, validated_counts.fn);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = benchutil::parseArgs(argc, argv);
  std::printf(
      "Figure 11: online validation effectiveness (two hard System S "
      "faults)\n(%zu trials per fault, base seed %llu)\n\n",
      args.trials, static_cast<unsigned long long>(args.seed));
  runValidationCase(eval::systemsBottleneck(), args);
  runValidationCase(eval::systemsConcCpuHog(), args);
  return 0;
}
