// bench_campaign_sweep: the full fault-space sweep (>= 1000 episodes) with
// the accuracy-vs-intensity frontier printed as plain text — the campaign
// analogue of the per-figure accuracy benches. Expect minutes of runtime;
// use examples/campaign_sweep for the capped CI smoke variant.
//
// Usage: bench_campaign_sweep [seed] [max_episodes]
//        (defaults: seed 1, full sweep)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "campaign/report.h"
#include "eval/frontier.h"

using namespace fchain;

int main(int argc, char** argv) {
  campaign::CampaignConfig config;
  config.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;
  config.max_episodes =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 0;

  const auto result = campaign::runCampaign(
      config, [](std::size_t done, std::size_t total,
                 const campaign::EpisodeRecord&) {
        if (done % 50 == 0 || done == total) {
          std::printf("  %zu/%zu episodes\n", done, total);
          std::fflush(stdout);
        }
      });

  std::fputs(eval::frontierMarkdown(result.report).c_str(), stdout);
  return 0;
}
