// Extension bench: the adaptive look-back window (the paper's §III-F
// ongoing work) against the fixed settings of Table I.
//
// Table I shows the tension a fixed window creates: W=100 is optimal for
// fast-manifesting faults but misses the slowly manifesting Hadoop DiskHog,
// which needs W=500. The adaptive ladder should match the best fixed
// setting of *each* fault without being told which fault it is.
#include "bench_util.h"
#include "fchain/adaptive.h"

using namespace fchain;

int main(int argc, char** argv) {
  const auto args = benchutil::parseArgs(argc, argv);
  std::printf(
      "Adaptive look-back window vs fixed W (extension of Table I)\n"
      "(%zu trials per fault, base seed %llu)\n\n",
      args.trials, static_cast<unsigned long long>(args.seed));

  std::vector<eval::FaultCase> cases = {
      eval::rubisNetHog(), eval::systemsCpuHog(), eval::hadoopConcDiskHog()};
  // Every variant starts from the same (default, W=100) configuration; the
  // per-case tuned window of Table I is the "fixed-best" row.
  for (auto& fault_case : cases) {
    fault_case.fchain_config.lookback_sec = 100;
  }

  std::printf("%-22s %-16s %-16s %-16s %10s\n", "case", "fixed W=100",
              "fixed W=500", "adaptive", "avg W");
  for (const auto& fault_case : cases) {
    eval::TrialOptions options;
    options.trials = args.trials;
    options.base_seed = args.seed;
    const auto set = eval::generateTrials(fault_case, options);
    if (set.trials.empty()) continue;

    eval::Counts fixed100, fixed500, adaptive_counts;
    double window_sum = 0.0;
    for (const auto& trial : set.trials) {
      core::FChainConfig narrow = fault_case.fchain_config;
      fixed100.accumulate(
          core::localizeRecord(trial.record, &trial.discovered, narrow)
              .pinpointed,
          trial.record.ground_truth);

      core::FChainConfig wide = fault_case.fchain_config;
      wide.lookback_sec = 500;
      fixed500.accumulate(
          core::localizeRecord(trial.record, &trial.discovered, wide)
              .pinpointed,
          trial.record.ground_truth);

      const auto adaptive = core::localizeRecordAdaptive(
          trial.record, &trial.discovered, fault_case.fchain_config);
      adaptive_counts.accumulate(adaptive.result.pinpointed,
                                 trial.record.ground_truth);
      window_sum += static_cast<double>(adaptive.chosen_window);
    }
    auto cell = [](const eval::Counts& counts) {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "P=%.2f R=%.2f",
                    counts.precision(), counts.recall());
      return std::string(buffer);
    };
    std::printf("%-22s %-16s %-16s %-16s %9.0fs\n", fault_case.label.c_str(),
                cell(fixed100).c_str(), cell(fixed500).c_str(),
                cell(adaptive_counts).c_str(),
                window_sum / static_cast<double>(set.trials.size()));
  }
  return 0;
}
