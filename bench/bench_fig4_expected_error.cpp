// Reproduces paper Fig. 4: the burstiness-derived *expected prediction
// error* tracking a CPU-usage series. Where the series is bursty the
// expected error (the dynamic filtering threshold) rises; where the series
// is stable it tightens. Printed as aligned columns (time, cpu, expected
// error) so the two series can be plotted directly.
#include <cstdio>

#include "common/rng.h"
#include "sim/apps.h"
#include "signal/burst.h"

using namespace fchain;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 17;

  // CPU usage of the RUBiS web VM under the diurnal NASA-like workload on a
  // dual-core host — bursty around flash crowds, stable in the troughs.
  Rng rng(seed);
  sim::Application app = sim::makeApplication(sim::AppKind::Rubis, 1200, rng);
  while (app.now() < 1200) app.step();
  const auto& cpu = app.metricsOf(0).of(MetricKind::CpuUsage);

  signal::BurstConfig burst;  // paper defaults: top 90 %, 90th percentile
  const TimeSec q = 20;

  std::printf("Figure 4: expected prediction error for a CPU usage series\n");
  std::printf("%6s %10s %18s\n", "t(sec)", "cpu(%)", "expected_error");
  for (TimeSec t = 300; t < 1150; t += 5) {
    const auto window = cpu.window(t - q, t + q + 1);
    const double expected = signal::expectedPredictionError(window, burst);
    std::printf("%6lld %10.2f %18.3f\n", static_cast<long long>(t),
                cpu.at(t), expected);
  }
  return 0;
}
