// Mesh-scale benchmark: localization latency as the generated microservice
// mesh grows, plus trace-driven flash-crowd replay throughput.
//
// Part 1 — services vs localization latency. For each mesh size a seeded
// micro-mesh (sim/mesh.h) runs under a data-store bottleneck until its SLO
// trips; the incident is then localized by a two-slave master and the wall
// time of localize() is the curve point. The injected store must appear in
// the pinpointed set — the mesh is black-box input, the verdict is not.
//
// Part 2 — million-user replay. A recorded workload trace (sim/trace.h) with
// flash crowds and regional shifts, sized past one million simulated users,
// is replayed twice: raw TraceCursor evaluation (streamed from disk, bounded
// memory) and as the live workload of an 80-service mesh via
// ScenarioConfig::workload_trace. The cursor must stay bit-equal to the
// in-memory trace while holding only the active event window.
//
// Everything lands in bench_mesh_scale.json for the CI soak artifact. Exit
// status gates: pinpoint misses on the curve, fewer than one million
// simulated users, cursor/in-memory divergence, an unbounded event window,
// or replay throughput below `floor_tps`.
//
// Usage: bench_mesh_scale [floor_tps] [seed]
#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <sys/resource.h>

#include "fchain/fchain.h"
#include "netdep/dependency.h"
#include "sim/mesh.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace {

using namespace fchain;

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

long maxRssKb() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return usage.ru_maxrss;
}

struct CurvePoint {
  std::size_t services = 0;
  TimeSec violation_time = 0;
  double sim_wall_ms = 0.0;
  double localize_ms = 0.0;
  bool target_hit = false;
};

/// One mesh incident end to end: simulate under a store bottleneck until the
/// SLO trips, then localize with a two-slave master and time localize().
CurvePoint runMeshPoint(std::size_t services, std::uint64_t seed) {
  CurvePoint point;
  point.services = services;

  sim::ScenarioConfig config;
  config.kind = sim::AppKind::Mesh;
  config.mesh = sim::meshConfigFor(services, seed);
  config.seed = seed + 70;
  config.duration_sec = 3600;
  const sim::ApplicationSpec spec = sim::makeMicroMeshSpec(config.mesh);
  const ComponentId target = spec.reference_path.back();
  faults::FaultSpec fault;
  fault.type = faults::FaultType::Bottleneck;
  fault.targets = {target};
  fault.start_time = 1300;
  fault.intensity = 1.5;
  config.faults = {fault};

  sim::Simulation sim(config);
  const std::size_t n = sim.app().componentCount();
  core::FChainSlave front(0), back(1);
  std::vector<ComponentId> ids;
  for (ComponentId id = 0; id < n; ++id) {
    ids.push_back(id);
    (id < n / 2 ? front : back).addComponent(id, 0);
  }

  const auto t_sim = std::chrono::steady_clock::now();
  while (!sim.violationTime().has_value() && sim.now() < 3600) {
    sim.step();
    const TimeSec t = sim.now() - 1;
    for (ComponentId id = 0; id < n; ++id) {
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = sim.app().metricsOf(id).of(kind).at(t);
      }
      (id < n / 2 ? front : back).ingest(id, sample);
    }
  }
  point.sim_wall_ms = msSince(t_sim);
  if (!sim.violationTime().has_value()) return point;  // target_hit stays false
  point.violation_time = *sim.violationTime();

  core::FChainMaster master;
  master.registerSlave(&front);
  master.registerSlave(&back);
  master.setDependencies(netdep::discoverDependencies(sim.record()));

  const auto t_loc = std::chrono::steady_clock::now();
  const core::PinpointResult result = master.localize(ids, point.violation_time);
  point.localize_ms = msSince(t_loc);
  point.target_hit =
      std::find(result.pinpointed.begin(), result.pinpointed.end(), target) !=
      result.pinpointed.end();
  return point;
}

struct ReplayStats {
  std::size_t trace_events = 0;
  double total_users = 0.0;
  double cursor_ticks_per_sec = 0.0;
  double mesh_ticks_per_sec = 0.0;
  std::size_t max_active_events = 0;
  bool identity = true;
  bool window_bounded = true;
};

/// Million-user flash-crowd replay: generate, persist, stream back.
ReplayStats runReplay(std::uint64_t seed, const std::string& path) {
  sim::TraceConfig config;
  config.seed = seed;
  config.duration_sec = 3600;
  config.base_users_per_sec = 400.0;  // 3600 s x ~400/s ≈ 1.4M users
  config.flash_per_hour = 40.0;
  config.flash_magnitude = 0.8;
  config.shift_per_hour = 6.0;

  ReplayStats stats;
  const sim::WorkloadTrace trace = sim::generateWorkloadTrace(config);
  stats.trace_events = trace.events.size();
  stats.total_users = trace.totalUsers();
  sim::writeTraceFile(path, trace);

  // Raw streamed evaluation, checked bit-for-bit against the in-memory
  // trace at every tick.
  sim::TraceCursor cursor(path);
  const auto t_cursor = std::chrono::steady_clock::now();
  for (TimeSec t = 0; t < static_cast<TimeSec>(config.duration_sec); ++t) {
    if (std::bit_cast<std::uint64_t>(cursor.intensityAt(t)) !=
        std::bit_cast<std::uint64_t>(trace.intensityAt(t))) {
      stats.identity = false;
    }
  }
  stats.cursor_ticks_per_sec = static_cast<double>(config.duration_sec) /
                               (msSince(t_cursor) / 1000.0);
  stats.max_active_events = cursor.maxActiveEvents();
  stats.window_bounded = stats.max_active_events * 4 < stats.trace_events;

  // The same recorded workload driving a live 80-service mesh.
  sim::ScenarioConfig scenario;
  scenario.kind = sim::AppKind::Mesh;
  scenario.mesh = sim::meshConfigFor(80, seed);
  scenario.seed = seed + 7;
  scenario.duration_sec = config.duration_sec;
  scenario.workload_trace =
      std::make_shared<const sim::WorkloadTrace>(sim::readTraceFile(path));
  sim::Simulation sim(scenario);
  const auto t_mesh = std::chrono::steady_clock::now();
  sim.runUntil(static_cast<TimeSec>(config.duration_sec));
  stats.mesh_ticks_per_sec = static_cast<double>(config.duration_sec) /
                             (msSince(t_mesh) / 1000.0);
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  double floor_tps = 0.0;
  std::uint64_t seed = 7;
  if (argc > 1) floor_tps = std::strtod(argv[1], nullptr);
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);

  std::printf("Mesh-scale localization + trace replay (seed %llu)\n\n",
              static_cast<unsigned long long>(seed));

  std::vector<CurvePoint> curve;
  std::printf("%10s %16s %12s %14s %12s\n", "services", "violation t",
              "sim ms", "localize ms", "target hit");
  for (const std::size_t services : {50u, 100u, 150u, 200u}) {
    curve.push_back(runMeshPoint(services, seed));
    const CurvePoint& p = curve.back();
    std::printf("%10zu %16lld %12.0f %14.2f %12s\n", p.services,
                static_cast<long long>(p.violation_time), p.sim_wall_ms,
                p.localize_ms, p.target_hit ? "yes" : "NO");
  }

  const std::string trace_path =
      (std::filesystem::temp_directory_path() / "bench_mesh_scale.fctrace")
          .string();
  const ReplayStats replay = runReplay(seed, trace_path);
  std::filesystem::remove(trace_path);

  std::printf("\nflash-crowd replay: %.0f simulated users, %zu events\n",
              replay.total_users, replay.trace_events);
  std::printf("  cursor replay:  %12.0f ticks/s (window %zu events, %s)\n",
              replay.cursor_ticks_per_sec, replay.max_active_events,
              replay.identity ? "bit-equal" : "DIVERGED");
  std::printf("  mesh replay:    %12.0f ticks/s (80 services under trace)\n",
              replay.mesh_ticks_per_sec);
  std::printf("  max rss:        %12ld kb\n", maxRssKb());

  std::ofstream out("bench_mesh_scale.json",
                    std::ios::binary | std::ios::trunc);
  out << "{\n  \"seed\": " << seed
      << ",\n  \"floor_ticks_per_sec\": " << floor_tps << ",\n  \"curve\": [\n";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    const CurvePoint& p = curve[i];
    out << "    {\"services\": " << p.services
        << ", \"violation_time\": " << p.violation_time
        << ", \"sim_wall_ms\": " << p.sim_wall_ms
        << ", \"localize_ms\": " << p.localize_ms
        << ", \"target_hit\": " << (p.target_hit ? "true" : "false") << "}"
        << (i + 1 < curve.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"replay\": {\n    \"total_users\": " << replay.total_users
      << ",\n    \"trace_events\": " << replay.trace_events
      << ",\n    \"cursor_ticks_per_sec\": " << replay.cursor_ticks_per_sec
      << ",\n    \"mesh_ticks_per_sec\": " << replay.mesh_ticks_per_sec
      << ",\n    \"max_active_events\": " << replay.max_active_events
      << ",\n    \"identity\": " << (replay.identity ? "true" : "false")
      << ",\n    \"max_rss_kb\": " << maxRssKb() << "\n  }\n}\n";
  std::printf("\nwrote bench_mesh_scale.json\n");

  for (const CurvePoint& p : curve) {
    if (!p.target_hit) {
      std::printf("FAIL: mesh%zu did not pinpoint the injected store\n",
                  p.services);
      return 1;
    }
  }
  if (replay.total_users < 1e6) {
    std::printf("FAIL: trace carries only %.0f simulated users (< 1M)\n",
                replay.total_users);
    return 1;
  }
  if (!replay.identity) {
    std::printf("FAIL: streamed replay diverged from the in-memory trace\n");
    return 1;
  }
  if (!replay.window_bounded) {
    std::printf("FAIL: cursor held %zu of %zu events — streaming window is "
                "not bounded\n",
                replay.max_active_events, replay.trace_events);
    return 1;
  }
  if (floor_tps > 0.0 && replay.mesh_ticks_per_sec < floor_tps) {
    std::printf("FAIL: mesh replay throughput %.0f ticks/s is below the "
                "floor %.0f\n",
                replay.mesh_ticks_per_sec, floor_tps);
    return 1;
  }
  return 0;
}
