// Online-monitoring overhead benchmark: what the always-on runtime costs.
// Two parts:
//
//   1. Steady-state ingest — a healthy three-app fleet (RUBiS + System S +
//      Hadoop, 20 components) streamed through OnlineMonitor::ingest /
//      observe / pump. Reports wall-clock samples/sec through the full path
//      (ring retention + slave ingest RPC + SLO bookkeeping) and the ring's
//      peak occupancy against its byte-capped capacity.
//
//   2. Trigger latency — repeated RUBiS CpuHog incidents; for each, the
//      wall time from the SLO latch to the finished pinpoint (the
//      `online.trigger_latency_ms` histogram) plus the sample-time
//      detection delay from fault injection to the latch.
//
// Besides the plain-text tables the bench writes every number — the
// monitor's full metric registry plus the bench-level aggregates — as JSON
// to bench_online_throughput.json, so CI can archive and diff runs.
//
// Exit status is a gate, not just a report: nonzero when the ring ever
// exceeds its configured capacity or when no incident triggers.
//
// Usage: bench_online_throughput [steady_ticks] [trials] [base_seed]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "online/monitor.h"
#include "sim/apps.h"
#include "sim/injector.h"
#include "sim/stream.h"

namespace {

using namespace fchain;

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct FleetApp {
  sim::ScenarioConfig config;
  ComponentId offset = 0;
  online::SloSpec slo;
};

/// The soak fleet minus the faults: RUBiS (4), System S (7), Hadoop (9).
std::vector<FleetApp> healthyFleet(std::size_t ticks, std::uint64_t seed) {
  std::vector<FleetApp> fleet;
  ComponentId offset = 0;
  for (const sim::AppKind kind :
       {sim::AppKind::Rubis, sim::AppKind::SystemS, sim::AppKind::Hadoop}) {
    FleetApp app;
    app.config.kind = kind;
    app.config.seed = mixSeed(seed, 0x0a11, fleet.size());
    app.config.duration_sec = ticks;
    app.offset = offset;
    if (kind == sim::AppKind::Hadoop) {
      app.slo.kind = online::SloSpec::Kind::Progress;
    } else {
      app.slo.kind = online::SloSpec::Kind::Latency;
      app.slo.latency_threshold_sec = sim::sloLatencyThreshold(kind);
      app.slo.sustain_sec = app.config.slo_sustain_sec;
    }
    offset += static_cast<ComponentId>(
        sim::makeAppSpec(kind).components.size());
    fleet.push_back(std::move(app));
  }
  return fleet;
}

struct SteadyStateResult {
  double samples_per_sec = 0.0;
  double wall_ms = 0.0;
  std::uint64_t samples = 0;
  std::size_t ring_peak = 0;
  std::size_t ring_capacity = 0;
  bool ring_overflow = false;
};

SteadyStateResult benchSteadyState(std::size_t ticks, std::uint64_t seed) {
  online::OnlineMonitorConfig config;
  config.worker_threads = 0;
  config.max_ring_bytes = 768 * 1024;
  online::OnlineMonitor monitor(std::move(config));

  auto fleet = healthyFleet(ticks, seed);
  std::vector<std::unique_ptr<sim::StreamingSource>> sources;
  std::vector<std::unique_ptr<core::FChainSlave>> slaves;
  std::vector<std::size_t> app_index;
  for (std::size_t a = 0; a < fleet.size(); ++a) {
    sources.push_back(std::make_unique<sim::StreamingSource>(fleet[a].config,
                                                             fleet[a].offset));
    auto slave = std::make_unique<core::FChainSlave>(static_cast<HostId>(a));
    for (ComponentId id : sources.back()->componentIds()) {
      slave->addComponent(id, 0);
    }
    monitor.addSlave(slave.get());
    slaves.push_back(std::move(slave));
    app_index.push_back(monitor.addApplication(
        {sources.back()->kind() == sim::AppKind::Rubis    ? "rubis"
         : sources.back()->kind() == sim::AppKind::SystemS ? "streams"
                                                           : "batch",
         sources.back()->componentIds(), fleet[a].slo}));
  }

  SteadyStateResult result;
  result.ring_capacity = monitor.ringCapacity();
  const sim::StreamingSource::SampleSink sink =
      [&](const sim::StreamSample& sample) { monitor.ingest(sample); };

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    for (std::size_t a = 0; a < fleet.size(); ++a) {
      const sim::StreamTick st = sources[a]->step(sink);
      monitor.observe(app_index[a], st);
    }
    monitor.pump();
    if (monitor.ringOccupancy() > monitor.ringCapacity()) {
      result.ring_overflow = true;
    }
  }
  result.wall_ms = msSince(t0);

  const auto snapshot = monitor.metrics().snapshot();
  result.samples = snapshot.counters.at("online.ingest_samples");
  result.ring_peak =
      static_cast<std::size_t>(snapshot.gauges.at("online.ring_peak"));
  result.samples_per_sec =
      static_cast<double>(result.samples) / (result.wall_ms / 1000.0);
  return result;
}

struct TriggerResult {
  std::size_t triggered = 0;
  std::size_t trials = 0;
  double mean_latency_ms = 0.0;      ///< latch -> pinpoint, wall clock
  double mean_detection_sec = 0.0;   ///< fault start -> latch, sample time
  /// Registry dump of the last trial's monitor (it carries the
  /// online.trigger_latency_ms histogram CI archives).
  std::string last_metrics_json;
};

TriggerResult benchTriggerLatency(std::size_t trials, std::uint64_t seed) {
  constexpr TimeSec kFaultStart = 2000;
  TriggerResult result;
  result.trials = trials;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    sim::ScenarioConfig config;
    config.kind = sim::AppKind::Rubis;
    config.seed = mixSeed(seed, 0x7419, trial);
    faults::FaultSpec fault;
    fault.type = faults::FaultType::CpuHog;
    fault.targets = {3};
    fault.start_time = kFaultStart;
    fault.intensity = 1.35;
    config.faults = {fault};

    online::OnlineMonitorConfig monitor_config;
    monitor_config.max_ring_bytes = 768 * 1024;
    online::OnlineMonitor monitor(std::move(monitor_config));
    sim::StreamingSource source(config);
    core::FChainSlave slave(0);
    for (ComponentId id : source.componentIds()) slave.addComponent(id, 0);
    monitor.addSlave(&slave);
    online::SloSpec slo;
    slo.latency_threshold_sec = sim::sloLatencyThreshold(config.kind);
    slo.sustain_sec = config.slo_sustain_sec;
    const std::size_t app =
        monitor.addApplication({"rubis", source.componentIds(), slo});

    const sim::StreamingSource::SampleSink sink =
        [&](const sim::StreamSample& sample) { monitor.ingest(sample); };
    while (monitor.incidents().empty() && source.now() < 3600) {
      const sim::StreamTick tick = source.step(sink);
      monitor.observe(app, tick);
      monitor.pump();
    }
    if (monitor.incidents().empty()) continue;
    const online::OnlineIncident& incident = monitor.incidents().front();
    ++result.triggered;
    result.mean_latency_ms += incident.localize_wall_ms;
    result.mean_detection_sec +=
        static_cast<double>(incident.violation_time - kFaultStart);
    if (trial + 1 == trials) {
      std::ostringstream json;
      monitor.metrics().writeJson(json);
      result.last_metrics_json = json.str();
    }
  }
  if (result.triggered > 0) {
    result.mean_latency_ms /= static_cast<double>(result.triggered);
    result.mean_detection_sec /= static_cast<double>(result.triggered);
  }
  return result;
}

void writeJsonReport(const SteadyStateResult& steady,
                     const TriggerResult& trigger) {
  std::ofstream out("bench_online_throughput.json",
                    std::ios::binary | std::ios::trunc);
  out << "{\n  \"steady_state\": {\n";
  out << "    \"samples\": " << steady.samples << ",\n";
  out << "    \"wall_ms\": " << steady.wall_ms << ",\n";
  out << "    \"ingest_samples_per_sec\": " << steady.samples_per_sec << ",\n";
  out << "    \"ring_peak\": " << steady.ring_peak << ",\n";
  out << "    \"ring_capacity\": " << steady.ring_capacity << ",\n";
  out << "    \"ring_overflow\": " << (steady.ring_overflow ? "true" : "false")
      << "\n  },\n";
  out << "  \"trigger\": {\n";
  out << "    \"trials\": " << trigger.trials << ",\n";
  out << "    \"triggered\": " << trigger.triggered << ",\n";
  out << "    \"mean_trigger_latency_ms\": " << trigger.mean_latency_ms
      << ",\n";
  out << "    \"mean_detection_delay_sec\": " << trigger.mean_detection_sec
      << "\n  },\n";
  out << "  \"last_trial_metrics\": " << trigger.last_metrics_json << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t steady_ticks = 3600;
  std::size_t trials = 5;
  std::uint64_t seed = 42;
  if (argc > 1) steady_ticks = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) trials = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) seed = std::strtoull(argv[3], nullptr, 10);

  std::printf("Online monitoring overhead\n");
  std::printf("(%zu steady-state ticks, %zu trigger trials, base seed %llu)\n\n",
              steady_ticks, trials, static_cast<unsigned long long>(seed));

  const SteadyStateResult steady = benchSteadyState(steady_ticks, seed);
  std::printf("Part 1: steady-state ingest (3 apps, 20 components, healthy)\n");
  std::printf("  %-28s %10.0f samples/s\n", "ingest throughput",
              steady.samples_per_sec);
  std::printf("  %-28s %10llu samples in %.1f ms\n", "streamed",
              static_cast<unsigned long long>(steady.samples), steady.wall_ms);
  std::printf("  %-28s %10zu / %zu samples%s\n\n", "ring peak / capacity",
              steady.ring_peak, steady.ring_capacity,
              steady.ring_overflow ? "  ** OVERFLOW **" : "");

  const TriggerResult trigger = benchTriggerLatency(trials, seed);
  std::printf("Part 2: violation -> pinpoint (RUBiS CpuHog on db)\n");
  std::printf("  %-28s %10zu / %zu trials\n", "auto-triggered",
              trigger.triggered, trigger.trials);
  std::printf("  %-28s %10.2f ms (wall, latch -> pinpoint)\n",
              "mean trigger latency", trigger.mean_latency_ms);
  std::printf("  %-28s %10.1f s (sample time, fault -> latch)\n",
              "mean detection delay", trigger.mean_detection_sec);

  writeJsonReport(steady, trigger);
  std::printf("\nwrote bench_online_throughput.json\n");
  benchutil::maybeDumpTrace("bench_online_throughput");

  if (steady.ring_overflow) {
    std::printf("FAIL: ring exceeded its capacity\n");
    return 1;
  }
  if (trigger.triggered == 0) {
    std::printf("FAIL: no trial auto-triggered a localization\n");
    return 1;
  }
  return 0;
}
