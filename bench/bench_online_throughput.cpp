// Online-monitoring overhead benchmark: what the always-on runtime costs.
// Three parts:
//
//   1. Steady-state ingest — a healthy three-app fleet (RUBiS + System S +
//      Hadoop, 20 components) streamed through OnlineMonitor::ingest /
//      observe / pump. Reports wall-clock samples/sec through the full path
//      (ring retention + slave ingest RPC + SLO bookkeeping) and the ring's
//      peak occupancy against its byte-capped capacity.
//
//   2. Trigger latency — repeated RUBiS CpuHog incidents; for each, the
//      wall time from the SLO latch to the finished pinpoint (the
//      `online.trigger_latency_ms` histogram) plus the sample-time
//      detection delay from fault injection to the latch.
//
//   3. Signal-engine throughput — the per-VM analysis kernel chain
//      (smooth -> CUSUM+bootstrap -> outlier -> burst threshold ->
//      rollback) run single-threaded over a fleet of metric windows, once
//      with the frozen reference engine (signal/reference.h) and once with
//      the scratch-arena engine, plus repeated analyze() rounds against a
//      warmed slave (>= 1000 ingested ticks, so the historical error-floor
//      path runs). Reports samples/sec/core for both engines and the
//      optimized engine's steady-state heap allocations per sample,
//      measured with this binary's operator-new counter.
//
// Besides the plain-text tables the bench writes every number — the
// monitor's full metric registry plus the bench-level aggregates — as JSON
// to bench_online_throughput.json, so CI can archive and diff runs.
//
// Exit status is a gate, not just a report: nonzero when the ring ever
// exceeds its configured capacity, when no incident triggers, when the
// optimized signal engine is less than 3x the in-binary reference engine
// (a self-relative floor, so it holds on any hardware), or when the signal
// path allocates at all per steady-state sample.
//
// Usage: bench_online_throughput [steady_ticks] [trials] [base_seed]
#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <span>
#include <sstream>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "fchain/slave.h"
#include "obs/metrics.h"
#include "online/monitor.h"
#include "signal/burst.h"
#include "signal/cusum.h"
#include "signal/outlier.h"
#include "signal/reference.h"
#include "signal/scratch.h"
#include "signal/smoothing.h"
#include "signal/tangent.h"
#include "sim/apps.h"
#include "sim/injector.h"
#include "sim/stream.h"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

// Allocation counter for the Part 3 zero-allocation gate (same pattern as
// the signal test suites).
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace fchain;

double msSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct FleetApp {
  sim::ScenarioConfig config;
  ComponentId offset = 0;
  online::SloSpec slo;
};

/// The soak fleet minus the faults: RUBiS (4), System S (7), Hadoop (9).
std::vector<FleetApp> healthyFleet(std::size_t ticks, std::uint64_t seed) {
  std::vector<FleetApp> fleet;
  ComponentId offset = 0;
  for (const sim::AppKind kind :
       {sim::AppKind::Rubis, sim::AppKind::SystemS, sim::AppKind::Hadoop}) {
    FleetApp app;
    app.config.kind = kind;
    app.config.seed = mixSeed(seed, 0x0a11, fleet.size());
    app.config.duration_sec = ticks;
    app.offset = offset;
    if (kind == sim::AppKind::Hadoop) {
      app.slo.kind = online::SloSpec::Kind::Progress;
    } else {
      app.slo.kind = online::SloSpec::Kind::Latency;
      app.slo.latency_threshold_sec = sim::sloLatencyThreshold(kind);
      app.slo.sustain_sec = app.config.slo_sustain_sec;
    }
    offset += static_cast<ComponentId>(
        sim::makeAppSpec(kind).components.size());
    fleet.push_back(std::move(app));
  }
  return fleet;
}

struct SteadyStateResult {
  double samples_per_sec = 0.0;
  double wall_ms = 0.0;
  std::uint64_t samples = 0;
  std::size_t ring_peak = 0;
  std::size_t ring_capacity = 0;
  bool ring_overflow = false;
};

SteadyStateResult benchSteadyState(std::size_t ticks, std::uint64_t seed) {
  online::OnlineMonitorConfig config;
  config.worker_threads = 0;
  config.max_ring_bytes = 768 * 1024;
  online::OnlineMonitor monitor(std::move(config));

  auto fleet = healthyFleet(ticks, seed);
  std::vector<std::unique_ptr<sim::StreamingSource>> sources;
  std::vector<std::unique_ptr<core::FChainSlave>> slaves;
  std::vector<std::size_t> app_index;
  for (std::size_t a = 0; a < fleet.size(); ++a) {
    sources.push_back(std::make_unique<sim::StreamingSource>(fleet[a].config,
                                                             fleet[a].offset));
    auto slave = std::make_unique<core::FChainSlave>(static_cast<HostId>(a));
    for (ComponentId id : sources.back()->componentIds()) {
      slave->addComponent(id, 0);
    }
    monitor.addSlave(slave.get());
    slaves.push_back(std::move(slave));
    app_index.push_back(monitor.addApplication(
        {sources.back()->kind() == sim::AppKind::Rubis    ? "rubis"
         : sources.back()->kind() == sim::AppKind::SystemS ? "streams"
                                                           : "batch",
         sources.back()->componentIds(), fleet[a].slo}));
  }

  SteadyStateResult result;
  result.ring_capacity = monitor.ringCapacity();
  const sim::StreamingSource::SampleSink sink =
      [&](const sim::StreamSample& sample) { monitor.ingest(sample); };

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    for (std::size_t a = 0; a < fleet.size(); ++a) {
      const sim::StreamTick st = sources[a]->step(sink);
      monitor.observe(app_index[a], st);
    }
    monitor.pump();
    if (monitor.ringOccupancy() > monitor.ringCapacity()) {
      result.ring_overflow = true;
    }
  }
  result.wall_ms = msSince(t0);

  const auto snapshot = monitor.metrics().snapshot();
  result.samples = snapshot.counters.at("online.ingest_samples");
  result.ring_peak =
      static_cast<std::size_t>(snapshot.gauges.at("online.ring_peak"));
  result.samples_per_sec =
      static_cast<double>(result.samples) / (result.wall_ms / 1000.0);
  return result;
}

struct TriggerResult {
  std::size_t triggered = 0;
  std::size_t trials = 0;
  double mean_latency_ms = 0.0;      ///< latch -> pinpoint, wall clock
  double mean_detection_sec = 0.0;   ///< fault start -> latch, sample time
  /// Registry dump of the last trial's monitor (it carries the
  /// online.trigger_latency_ms histogram CI archives).
  std::string last_metrics_json;
};

TriggerResult benchTriggerLatency(std::size_t trials, std::uint64_t seed) {
  constexpr TimeSec kFaultStart = 2000;
  TriggerResult result;
  result.trials = trials;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    sim::ScenarioConfig config;
    config.kind = sim::AppKind::Rubis;
    config.seed = mixSeed(seed, 0x7419, trial);
    faults::FaultSpec fault;
    fault.type = faults::FaultType::CpuHog;
    fault.targets = {3};
    fault.start_time = kFaultStart;
    fault.intensity = 1.35;
    config.faults = {fault};

    online::OnlineMonitorConfig monitor_config;
    monitor_config.max_ring_bytes = 768 * 1024;
    online::OnlineMonitor monitor(std::move(monitor_config));
    sim::StreamingSource source(config);
    core::FChainSlave slave(0);
    for (ComponentId id : source.componentIds()) slave.addComponent(id, 0);
    monitor.addSlave(&slave);
    online::SloSpec slo;
    slo.latency_threshold_sec = sim::sloLatencyThreshold(config.kind);
    slo.sustain_sec = config.slo_sustain_sec;
    const std::size_t app =
        monitor.addApplication({"rubis", source.componentIds(), slo});

    const sim::StreamingSource::SampleSink sink =
        [&](const sim::StreamSample& sample) { monitor.ingest(sample); };
    while (monitor.incidents().empty() && source.now() < 3600) {
      const sim::StreamTick tick = source.step(sink);
      monitor.observe(app, tick);
      monitor.pump();
    }
    if (monitor.incidents().empty()) continue;
    const online::OnlineIncident& incident = monitor.incidents().front();
    ++result.triggered;
    result.mean_latency_ms += incident.localize_wall_ms;
    result.mean_detection_sec +=
        static_cast<double>(incident.violation_time - kFaultStart);
    if (trial + 1 == trials) {
      std::ostringstream json;
      monitor.metrics().writeJson(json);
      result.last_metrics_json = json.str();
    }
  }
  if (result.triggered > 0) {
    result.mean_latency_ms /= static_cast<double>(result.triggered);
    result.mean_detection_sec /= static_cast<double>(result.triggered);
  }
  return result;
}

// --- Part 3: signal-engine throughput (optimized vs frozen reference) ------

struct SignalEngineResult {
  double reference_sps = 0.0;  ///< samples/sec/core, frozen engine
  double optimized_sps = 0.0;  ///< samples/sec/core, scratch-arena engine
  double speedup = 0.0;
  std::uint64_t reference_samples = 0;
  std::uint64_t optimized_samples = 0;
  std::uint64_t steady_allocs = 0;         ///< heap allocs in the timed window
  double allocs_per_sample = 0.0;
  std::uint64_t scratch_grow_events = 0;   ///< arena growth in the timed window
  double slave_rounds_per_sec = 0.0;       ///< warmed-slave analyzeBatch rounds
  double checksum = 0.0;                   ///< anti-dead-code accumulator
};

/// The per-VM kernel chain the selector runs per metric: smooth -> CUSUM +
/// bootstrap -> magnitude outlier -> burst threshold -> tangent rollback.
/// Returns a cheap checksum so the optimizer cannot discard the work.
double chainOptimized(std::span<const double> window,
                      signal::SignalScratch& scratch) {
  const std::vector<double>& smoothed = signal::movingAverageInto(
      window, 2, scratch.smoothed(window.size()));
  const std::vector<signal::ChangePoint>& points = signal::detectChangePointsInto(
      smoothed, signal::CusumConfig{}, scratch, scratch.points());
  const std::vector<signal::ChangePoint>& outliers = signal::outlierChangePointsInto(
      points, signal::OutlierConfig{}, scratch, scratch.outliers());
  double acc = static_cast<double>(points.size() + outliers.size());
  const std::size_t start = window.size() > 41 ? window.size() - 41 : 0;
  acc += signal::expectedPredictionError(window.subspan(start),
                                         signal::BurstConfig{}, scratch);
  if (!outliers.empty()) {
    acc += static_cast<double>(signal::rollbackOnset(
        smoothed, outliers, outliers.size() - 1, signal::RollbackConfig{},
        scratch));
  }
  return acc;
}

/// Same chain through the frozen pre-optimization kernels.
double chainReference(std::span<const double> window) {
  const std::vector<double> smoothed =
      signal::reference::movingAverage(window, 2);
  const std::vector<signal::ChangePoint> points =
      signal::reference::detectChangePoints(smoothed, signal::CusumConfig{});
  const std::vector<signal::ChangePoint> outliers =
      signal::reference::outlierChangePoints(points, signal::OutlierConfig{});
  double acc = static_cast<double>(points.size() + outliers.size());
  const std::size_t start = window.size() > 41 ? window.size() - 41 : 0;
  acc += signal::reference::expectedPredictionError(window.subspan(start),
                                                    signal::BurstConfig{});
  if (!outliers.empty()) {
    acc += static_cast<double>(signal::reference::rollbackOnset(
        smoothed, outliers, outliers.size() - 1, signal::RollbackConfig{}));
  }
  return acc;
}

/// A fleet's worth of look-back windows: 8 VMs x 6 metrics, 101 samples
/// each. Three quarters are healthy (noise around a level — the common case
/// the early-exit bootstrap feeds on), one quarter carry an injected level
/// shift so the accept path is exercised too.
std::vector<std::vector<double>> engineWindows(std::uint64_t seed) {
  constexpr std::size_t kWindows = 48;
  constexpr std::size_t kSamples = 101;
  std::vector<std::vector<double>> windows;
  windows.reserve(kWindows);
  for (std::size_t w = 0; w < kWindows; ++w) {
    Rng rng(mixSeed(seed, 0x516e, w));
    std::vector<double> xs(kSamples);
    const double level = 40.0 + rng.uniform(0.0, 20.0);
    for (std::size_t i = 0; i < kSamples; ++i) {
      xs[i] = level + rng.gaussian() * 2.0;
      if (w % 4 == 0 && i >= 2 * kSamples / 3) xs[i] += 25.0;  // faulty VM
    }
    windows.push_back(std::move(xs));
  }
  return windows;
}

/// A slave with >= 1000 ingested ticks per VM, so analyze() runs the full
/// selector including the historical error-floor path.
core::FChainSlave warmedSlave(std::uint64_t seed) {
  constexpr std::size_t kVms = 8;
  constexpr std::size_t kTicks = 1400;
  core::FChainSlave slave(0);
  for (ComponentId id = 0; id < kVms; ++id) slave.addComponent(id, 0);
  Rng rng(mixSeed(seed, 0x51a7e, 1));
  for (std::size_t t = 0; t < kTicks; ++t) {
    for (ComponentId id = 0; id < kVms; ++id) {
      std::array<double, kMetricCount> sample;
      for (std::size_t m = 0; m < kMetricCount; ++m) {
        double v = 40.0 + 10.0 * static_cast<double>(m) + rng.gaussian() * 1.5;
        // VM 1 ramps late, VM 3 steps late: keep the abnormal path warm.
        if (id == 1 && t >= 1200) {
          v += 0.15 * static_cast<double>(t - 1200);
        }
        if (id == 3 && t >= 1250) v += 30.0;
        sample[m] = v;
      }
      slave.ingest(id, sample);
    }
  }
  return slave;
}

SignalEngineResult benchSignalEngine(std::uint64_t seed) {
  SignalEngineResult result;
  const std::vector<std::vector<double>> windows = engineWindows(seed);
  std::uint64_t samples_per_pass = 0;
  for (const auto& w : windows) samples_per_pass += w.size();

  signal::SignalScratch scratch;
  // Warm pass: size every lane, fill the permutation pool and FFT plans.
  for (const auto& w : windows) result.checksum += chainOptimized(w, scratch);
  scratch.accountGrowth();

  constexpr double kTargetMs = 400.0;

  // Reference engine (frozen pre-optimization kernels), single-threaded.
  {
    for (const auto& w : windows) result.checksum += chainReference(w);  // warm
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed_ms = 0.0;
    while (elapsed_ms < kTargetMs) {
      for (const auto& w : windows) result.checksum += chainReference(w);
      result.reference_samples += samples_per_pass;
      elapsed_ms = msSince(t0);
    }
    result.reference_sps =
        static_cast<double>(result.reference_samples) / (elapsed_ms / 1000.0);
  }

  // Optimized engine, single-threaded, with the allocation counter armed.
  {
    const std::uint64_t grow_before = scratch.stats().grow_events;
    const std::size_t allocs_before =
        g_allocations.load(std::memory_order_relaxed);
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed_ms = 0.0;
    while (elapsed_ms < kTargetMs) {
      for (const auto& w : windows) {
        result.checksum += chainOptimized(w, scratch);
      }
      result.optimized_samples += samples_per_pass;
      elapsed_ms = msSince(t0);
    }
    result.steady_allocs =
        g_allocations.load(std::memory_order_relaxed) - allocs_before;
    scratch.accountGrowth();
    result.scratch_grow_events = scratch.stats().grow_events - grow_before;
    result.optimized_sps =
        static_cast<double>(result.optimized_samples) / (elapsed_ms / 1000.0);
  }

  result.speedup = result.optimized_sps / result.reference_sps;
  result.allocs_per_sample = static_cast<double>(result.steady_allocs) /
                             static_cast<double>(result.optimized_samples);

  // Warmed-slave rounds: the same engine driven through the real selector
  // (error floor, adaptive smoothing, model predictions included).
  {
    core::FChainSlave slave = warmedSlave(seed);
    const std::vector<ComponentId> ids = slave.components();
    constexpr TimeSec kViolation = 1399;
    auto warm = slave.analyzeBatch(ids, kViolation);  // sizes threadScratch
    result.checksum += static_cast<double>(warm.size());
    const auto t0 = std::chrono::steady_clock::now();
    double elapsed_ms = 0.0;
    std::uint64_t rounds = 0;
    while (elapsed_ms < 200.0) {
      const auto findings = slave.analyzeBatch(ids, kViolation);
      for (const auto& f : findings) {
        if (f) result.checksum += static_cast<double>(f->component);
      }
      ++rounds;
      elapsed_ms = msSince(t0);
    }
    result.slave_rounds_per_sec =
        static_cast<double>(rounds) / (elapsed_ms / 1000.0);
  }
  return result;
}

void writeJsonReport(const SteadyStateResult& steady,
                     const TriggerResult& trigger,
                     const SignalEngineResult& engine) {
  std::ofstream out("bench_online_throughput.json",
                    std::ios::binary | std::ios::trunc);
  out << "{\n  \"steady_state\": {\n";
  out << "    \"samples\": " << steady.samples << ",\n";
  out << "    \"wall_ms\": " << steady.wall_ms << ",\n";
  out << "    \"ingest_samples_per_sec\": " << steady.samples_per_sec << ",\n";
  out << "    \"ring_peak\": " << steady.ring_peak << ",\n";
  out << "    \"ring_capacity\": " << steady.ring_capacity << ",\n";
  out << "    \"ring_overflow\": " << (steady.ring_overflow ? "true" : "false")
      << "\n  },\n";
  out << "  \"trigger\": {\n";
  out << "    \"trials\": " << trigger.trials << ",\n";
  out << "    \"triggered\": " << trigger.triggered << ",\n";
  out << "    \"mean_trigger_latency_ms\": " << trigger.mean_latency_ms
      << ",\n";
  out << "    \"mean_detection_delay_sec\": " << trigger.mean_detection_sec
      << "\n  },\n";
  out << "  \"signal_engine\": {\n";
  out << "    \"reference_samples_per_sec_per_core\": " << engine.reference_sps
      << ",\n";
  out << "    \"optimized_samples_per_sec_per_core\": " << engine.optimized_sps
      << ",\n";
  out << "    \"speedup\": " << engine.speedup << ",\n";
  out << "    \"optimized_samples\": " << engine.optimized_samples << ",\n";
  out << "    \"steady_state_allocations\": " << engine.steady_allocs << ",\n";
  out << "    \"steady_state_allocations_per_sample\": "
      << engine.allocs_per_sample << ",\n";
  out << "    \"scratch_grow_events\": " << engine.scratch_grow_events
      << ",\n";
  out << "    \"warmed_slave_analyze_rounds_per_sec\": "
      << engine.slave_rounds_per_sec << "\n  },\n";
  out << "  \"last_trial_metrics\": " << trigger.last_metrics_json << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t steady_ticks = 3600;
  std::size_t trials = 5;
  std::uint64_t seed = 42;
  if (argc > 1) steady_ticks = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) trials = std::strtoull(argv[2], nullptr, 10);
  if (argc > 3) seed = std::strtoull(argv[3], nullptr, 10);

  std::printf("Online monitoring overhead\n");
  std::printf("(%zu steady-state ticks, %zu trigger trials, base seed %llu)\n\n",
              steady_ticks, trials, static_cast<unsigned long long>(seed));

  const SteadyStateResult steady = benchSteadyState(steady_ticks, seed);
  std::printf("Part 1: steady-state ingest (3 apps, 20 components, healthy)\n");
  std::printf("  %-28s %10.0f samples/s\n", "ingest throughput",
              steady.samples_per_sec);
  std::printf("  %-28s %10llu samples in %.1f ms\n", "streamed",
              static_cast<unsigned long long>(steady.samples), steady.wall_ms);
  std::printf("  %-28s %10zu / %zu samples%s\n\n", "ring peak / capacity",
              steady.ring_peak, steady.ring_capacity,
              steady.ring_overflow ? "  ** OVERFLOW **" : "");

  const TriggerResult trigger = benchTriggerLatency(trials, seed);
  std::printf("Part 2: violation -> pinpoint (RUBiS CpuHog on db)\n");
  std::printf("  %-28s %10zu / %zu trials\n", "auto-triggered",
              trigger.triggered, trigger.trials);
  std::printf("  %-28s %10.2f ms (wall, latch -> pinpoint)\n",
              "mean trigger latency", trigger.mean_latency_ms);
  std::printf("  %-28s %10.1f s (sample time, fault -> latch)\n\n",
              "mean detection delay", trigger.mean_detection_sec);

  const SignalEngineResult engine = benchSignalEngine(seed);
  std::printf("Part 3: per-VM signal engine (48 windows x 101 samples, 1 thread)\n");
  std::printf("  %-28s %10.0f samples/s/core\n", "reference engine",
              engine.reference_sps);
  std::printf("  %-28s %10.0f samples/s/core\n", "optimized engine",
              engine.optimized_sps);
  std::printf("  %-28s %10.2fx (gate: >= 3.0x)\n", "speedup",
              engine.speedup);
  std::printf("  %-28s %10llu allocs in %llu samples (gate: 0)\n",
              "steady-state heap allocs",
              static_cast<unsigned long long>(engine.steady_allocs),
              static_cast<unsigned long long>(engine.optimized_samples));
  std::printf("  %-28s %10llu events in timed window\n", "scratch growth",
              static_cast<unsigned long long>(engine.scratch_grow_events));
  std::printf("  %-28s %10.1f rounds/s (8 VMs, 1400-tick history)\n",
              "warmed-slave analyzeBatch", engine.slave_rounds_per_sec);

  writeJsonReport(steady, trigger, engine);
  std::printf("\nwrote bench_online_throughput.json\n");
  benchutil::maybeDumpTrace("bench_online_throughput");

  if (steady.ring_overflow) {
    std::printf("FAIL: ring exceeded its capacity\n");
    return 1;
  }
  if (trigger.triggered == 0) {
    std::printf("FAIL: no trial auto-triggered a localization\n");
    return 1;
  }
  if (engine.speedup < 3.0) {
    std::printf("FAIL: optimized signal engine is %.2fx the reference engine "
                "(floor: 3.0x)\n",
                engine.speedup);
    return 1;
  }
  if (engine.steady_allocs != 0) {
    std::printf("FAIL: signal hot path allocated %llu times in steady state "
                "(gate: 0)\n",
                static_cast<unsigned long long>(engine.steady_allocs));
    return 1;
  }
  return 0;
}
