// Reproduces paper Fig. 12: FChain's burstiness-derived dynamic threshold
// versus the Fixed-Filtering ablation, on LBBug (RUBiS) and DiskHog
// (Hadoop). Fixed-Filtering uses the identical pipeline but replaces the
// dynamic threshold with a fixed prediction-error threshold, swept over a
// wide range.
//
// Expected shape: Fixed-Filtering is very sensitive to the threshold — too
// low floods with false positives, too high misses the fault — while FChain
// sits at or near the envelope of the sweep without any tuning.
#include "bench_util.h"

using namespace fchain;

int main(int argc, char** argv) {
  const auto args = benchutil::parseArgs(argc, argv);
  std::printf(
      "Figure 12: dynamic vs fixed prediction-error filtering\n"
      "(%zu trials per fault, base seed %llu)\n\n",
      args.trials, static_cast<unsigned long long>(args.seed));

  for (const auto& fault_case :
       {eval::rubisLBBug(), eval::hadoopConcDiskHog()}) {
    eval::TrialOptions options;
    options.trials = args.trials;
    options.base_seed = args.seed;
    const auto set = eval::generateTrials(fault_case, options);
    if (set.trials.empty()) {
      std::printf("== %s: no SLO violations ==\n\n",
                  fault_case.label.c_str());
      continue;
    }

    baselines::FChainScheme fchain_scheme(fault_case.fchain_config);
    baselines::FixedFilteringScheme fixed_scheme(fault_case.fchain_config);
    const auto curves = eval::evaluateSchemes(
        {&fchain_scheme, &fixed_scheme}, set);
    eval::printCurves(std::cout, fault_case.label, curves,
                      set.trials.size());
  }
  return 0;
}
