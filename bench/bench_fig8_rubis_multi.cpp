// Reproduces paper Fig. 8: RUBiS multi-component concurrent faults — the
// two real software bugs, OffloadBug (JBoss JIRA #JBAS-1442) and LBBug
// (mod_jk 1.2.30 uneven dispatch). Ground truth is {app1, app2}: the two
// application servers whose load the bug directly re-shapes at injection
// time (see DESIGN.md on this interpretation).
#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fchain;
  return benchutil::runFigure(
      "Figure 8: RUBiS multi-component concurrent fault localization accuracy",
      {eval::rubisOffloadBug(), eval::rubisLBBug()}, argc, argv);
}
