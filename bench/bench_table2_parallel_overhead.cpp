// Extends the Table-II overhead study to the parallel localization engine:
// sweeps component count × worker-thread count and reports serial vs
// parallel end-to-end localization latency (the paper's "analysis time"
// budget, §III-G — FChain's headline claim is pinpointing within seconds of
// the SLO violation).
//
// Three parts:
//   1. In-process sweep — N components spread round-robin over S slaves,
//      each with a 700 s six-metric stream and one CpuHog-style step on the
//      last component; LocalEndpoint transports, so the cells measure pure
//      compute scaling (needs real cores to show > 1×).
//   2. Real-socket sweep — the same cluster served by per-slave
//      SlaveService instances over unix sockets, the master reaching them
//      through SocketEndpoint: every cell pays genuine connect/encode/
//      send/recv/decode costs through the production wire protocol instead
//      of a sleep-based WAN emulation. Each service adds a 25 ms
//      analyze-side delay (the crash-drill hook) so the round-trip cost is
//      measurable even on a single-core machine: batching turns N
//      per-component requests into S per-slave requests, and the worker
//      pool overlaps the S socket round-trips. The 32-component / 4-slave /
//      4-thread cell must clear 2× or the bench exits nonzero; every
//      socket verdict must also be bit-identical to the in-process serial
//      reference (transport transparency).
//   3. Lossy-telemetry equivalence — replays the bench_robustness scenarios
//      (10 % sample loss, rotating dead slave behind a FlakyEndpoint
//      blackout) through both engines.
//
// Every parallel cell in every part must return a PinpointResult
// bit-identical to the serial reference; each table prints the identity
// check per row.
//
// Usage: bench_table2_parallel_overhead [repetitions] [seed]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fchain/fchain.h"
#include "fchain/slave_service.h"
#include "runtime/flaky_endpoint.h"
#include "runtime/socket_endpoint.h"
#include "sim/injector.h"
#include "sim/simulator.h"

namespace {

using namespace fchain;
using Clock = std::chrono::steady_clock;

constexpr TimeSec kStreamLen = 700;
constexpr TimeSec kFaultStart = 600;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

bool sameFinding(const core::ComponentFinding& a,
                 const core::ComponentFinding& b) {
  if (a.component != b.component || a.onset != b.onset || a.trend != b.trend ||
      a.metrics.size() != b.metrics.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    const core::MetricFinding& ma = a.metrics[i];
    const core::MetricFinding& mb = b.metrics[i];
    if (ma.metric != mb.metric || ma.onset != mb.onset ||
        ma.change_point != mb.change_point || ma.trend != mb.trend ||
        ma.prediction_error != mb.prediction_error ||
        ma.expected_error != mb.expected_error) {
      return false;
    }
  }
  return true;
}

bool samePinpoint(const core::PinpointResult& a,
                  const core::PinpointResult& b) {
  if (a.pinpointed != b.pinpointed || a.external_factor != b.external_factor ||
      a.external_trend != b.external_trend || a.coverage != b.coverage ||
      a.unanalyzed != b.unanalyzed || a.chain.size() != b.chain.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.chain.size(); ++i) {
    if (!sameFinding(a.chain[i], b.chain[i])) return false;
  }
  return true;
}

/// Synthetic monitored cluster: `components` VMs round-robin across
/// `slave_count` slaves, each streaming 700 s of noisy six-metric samples;
/// the last component takes a CpuHog-style step at t=600.
struct SyntheticCluster {
  std::vector<core::FChainSlave> slaves;
  std::vector<ComponentId> components;
  TimeSec tv = kStreamLen - 1;
};

SyntheticCluster buildCluster(std::size_t components, std::size_t slave_count,
                              std::uint64_t seed) {
  SyntheticCluster cluster;
  cluster.slaves.reserve(slave_count);
  for (HostId h = 0; h < slave_count; ++h) cluster.slaves.emplace_back(h);
  for (ComponentId id = 0; id < components; ++id) {
    cluster.components.push_back(id);
    cluster.slaves[id % slave_count].addComponent(id, 0);
  }
  const ComponentId faulty = static_cast<ComponentId>(components - 1);
  for (ComponentId id = 0; id < components; ++id) {
    Rng rng(mixSeed(seed, 0xc105, id));
    core::FChainSlave& slave = cluster.slaves[id % slave_count];
    std::array<double, kMetricCount> level{45.0, 900.0, 210.0,
                                           180.0, 35.0,  60.0};
    for (TimeSec t = 0; t < kStreamLen; ++t) {
      std::array<double, kMetricCount> sample{};
      const bool hogged = id == faulty && t >= kFaultStart;
      for (std::size_t m = 0; m < kMetricCount; ++m) {
        // AR(1)-flavoured wander plus white jitter keeps CUSUM's bootstrap
        // honestly busy (a constant series would short-circuit selection).
        level[m] += rng.uniform(-0.4, 0.4);
        double value = level[m] + rng.uniform(-1.5, 1.5);
        if (hogged && m == 0) value *= 1.6;  // CPU step
        sample[m] = value;
      }
      slave.ingest(id, sample);
    }
  }
  return cluster;
}

struct TimedRun {
  core::PinpointResult result;
  double best_ms = 0.0;
};

TimedRun timeLocalize(SyntheticCluster& cluster, int threads,
                      int slave_threads, std::size_t repetitions) {
  core::FChainMaster master;
  master.setWorkerThreads(threads);
  for (core::FChainSlave& slave : cluster.slaves) {
    slave.setAnalysisThreads(slave_threads);
    master.registerSlave(&slave);
  }
  TimedRun run;
  run.best_ms = 1e300;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    const auto start = Clock::now();
    run.result = master.localize(cluster.components, cluster.tv);
    run.best_ms = std::min(run.best_ms, msSince(start));
  }
  for (core::FChainSlave& slave : cluster.slaves) {
    slave.setAnalysisThreads(0);
  }
  return run;
}

/// One SlaveService per slave on a unix socket under a throwaway directory:
/// the production wire path, in-process only so the bench stays hermetic.
class SocketCluster {
 public:
  SocketCluster(SyntheticCluster& cluster, double analyze_delay_ms)
      : cluster_(cluster) {
    char tmpl[] = "/tmp/fchain_t2_XXXXXX";
    if (mkdtemp(tmpl) == nullptr) {
      std::perror("mkdtemp");
      std::abort();
    }
    dir_ = tmpl;
    for (std::size_t s = 0; s < cluster.slaves.size(); ++s) {
      core::SlaveServiceConfig config;
      config.listen = runtime::SocketAddress::unixPath(
          dir_ + "/s" + std::to_string(s) + ".sock");
      config.analyze_delay_ms = analyze_delay_ms;
      services_.push_back(
          std::make_unique<core::SlaveService>(cluster.slaves[s], config));
      services_.back()->start();
    }
  }

  ~SocketCluster() {
    for (auto& service : services_) service->stop();
    services_.clear();
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  TimedRun timeLocalize(int threads, int slave_threads,
                        std::size_t repetitions) {
    core::FChainMaster master;
    master.setWorkerThreads(threads);
    for (std::size_t s = 0; s < cluster_.slaves.size(); ++s) {
      cluster_.slaves[s].setAnalysisThreads(slave_threads);
      std::vector<ComponentId> manifest;
      for (ComponentId id : cluster_.components) {
        if (id % cluster_.slaves.size() == s) manifest.push_back(id);
      }
      runtime::SocketEndpointConfig config;
      config.address = services_[s]->address();
      config.backoff_seed = s;
      master.registerEndpoint(
          std::make_shared<runtime::SocketEndpoint>(config), manifest);
    }
    TimedRun run;
    run.best_ms = 1e300;
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      const auto start = Clock::now();
      run.result = master.localize(cluster_.components, cluster_.tv);
      run.best_ms = std::min(run.best_ms, msSince(start));
    }
    for (core::FChainSlave& slave : cluster_.slaves) {
      slave.setAnalysisThreads(0);
    }
    return run;
  }

 private:
  SyntheticCluster& cluster_;
  std::string dir_;
  std::vector<std::unique_ptr<core::SlaveService>> services_;
};

struct SweepOutcome {
  bool all_identical = true;
  /// Speedup of the 32-component / 4-thread cell (the acceptance headline).
  double headline_speedup = 0.0;
};

SweepOutcome sweepSynthetic(const char* title, std::size_t repetitions,
                            std::uint64_t seed) {
  constexpr std::size_t kSlaves = 4;
  std::printf("%s (%zu slaves)\n", title, kSlaves);
  std::printf("  %-12s %-10s %-12s %-12s %-10s %s\n", "components", "threads",
              "serial_ms", "parallel_ms", "speedup", "identical");
  SweepOutcome outcome;
  for (std::size_t components : {8u, 16u, 32u, 64u}) {
    SyntheticCluster cluster = buildCluster(components, kSlaves, seed);
    const TimedRun serial = timeLocalize(cluster, /*threads=*/0,
                                         /*slave_threads=*/0, repetitions);
    for (int threads : {1, 2, 4, 8}) {
      // Threads beyond the slave count flow into slave-side batch analysis
      // (each slave fans its own components out across the spare cores).
      const int slave_threads =
          threads > static_cast<int>(kSlaves)
              ? threads / static_cast<int>(kSlaves)
              : 0;
      const TimedRun parallel =
          timeLocalize(cluster, threads, slave_threads, repetitions);
      const bool identical = samePinpoint(serial.result, parallel.result);
      outcome.all_identical = outcome.all_identical && identical;
      const double speedup = serial.best_ms / parallel.best_ms;
      if (components == 32 && threads == 4) {
        outcome.headline_speedup = speedup;
      }
      std::printf("  %-12zu %-10d %-12.2f %-12.2f %-10.2f %s\n", components,
                  threads, serial.best_ms, parallel.best_ms, speedup,
                  identical ? "yes" : "NO");
    }
  }
  std::printf("\n");
  return outcome;
}

/// The real-socket column: the same sweep over SlaveService/SocketEndpoint
/// unix-socket transports with a 25 ms server-side analyze delay standing
/// in for per-host network+analysis latency. Besides serial-vs-parallel
/// identity, every socket verdict is checked bit-identical against the
/// in-process serial reference — the wire codec must be transparent.
SweepOutcome sweepSockets(const char* title, double analyze_delay_ms,
                          std::size_t repetitions, std::uint64_t seed) {
  constexpr std::size_t kSlaves = 4;
  std::printf("%s (%zu slaves)\n", title, kSlaves);
  std::printf("  %-12s %-10s %-12s %-12s %-10s %s\n", "components", "threads",
              "serial_ms", "parallel_ms", "speedup", "identical");
  SweepOutcome outcome;
  for (std::size_t components : {8u, 16u, 32u, 64u}) {
    SyntheticCluster cluster = buildCluster(components, kSlaves, seed);
    const TimedRun reference = timeLocalize(cluster, /*threads=*/0,
                                            /*slave_threads=*/0,
                                            /*repetitions=*/1);
    SocketCluster sockets(cluster, analyze_delay_ms);
    const TimedRun serial =
        sockets.timeLocalize(/*threads=*/0, /*slave_threads=*/0, repetitions);
    outcome.all_identical = outcome.all_identical &&
                            samePinpoint(reference.result, serial.result);
    for (int threads : {1, 2, 4, 8}) {
      const int slave_threads =
          threads > static_cast<int>(kSlaves)
              ? threads / static_cast<int>(kSlaves)
              : 0;
      const TimedRun parallel =
          sockets.timeLocalize(threads, slave_threads, repetitions);
      const bool identical = samePinpoint(reference.result, parallel.result);
      outcome.all_identical = outcome.all_identical && identical;
      const double speedup = serial.best_ms / parallel.best_ms;
      if (components == 32 && threads == 4) {
        outcome.headline_speedup = speedup;
      }
      std::printf("  %-12zu %-10d %-12.2f %-12.2f %-10.2f %s\n", components,
                  threads, serial.best_ms, parallel.best_ms, speedup,
                  identical ? "yes" : "NO");
    }
  }
  std::printf("\n");
  return outcome;
}

// --- Part 2: lossy-telemetry equivalence ----------------------------------

constexpr ComponentId kFaultyDb = 3;
constexpr std::size_t kRubisComponents = 4;

struct Incident {
  sim::RunRecord record;
  TimeSec tv = 0;
};

std::optional<Incident> simulateIncident(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.kind = sim::AppKind::Rubis;
  config.seed = seed;
  faults::FaultSpec fault;
  fault.type = faults::FaultType::CpuHog;
  fault.targets = {kFaultyDb};
  fault.start_time = 2000;
  fault.intensity = 1.35;
  config.faults = {fault};
  auto result = sim::runScenario(config);
  if (!result.record.violation_time.has_value()) return std::nullopt;
  return Incident{std::move(result.record), *result.record.violation_time};
}

/// Replays one recorded incident through 10 % sample loss and a rotating
/// blackout slave (the bench_robustness_lossy_telemetry setup), localizing
/// with the given engine configuration.
core::PinpointResult lossyVerdict(const Incident& incident, std::size_t trial,
                                  int threads, std::uint64_t seed) {
  sim::TelemetryFaultSpec loss;
  loss.type = sim::TelemetryFaultType::SampleDropBurst;
  loss.rate = 0.10;
  loss.seed = mixSeed(seed, 1, trial);
  sim::TelemetryFaultInjector telemetry({loss});

  std::vector<core::FChainSlave> slaves;
  slaves.reserve(kRubisComponents);
  for (HostId h = 0; h < kRubisComponents; ++h) slaves.emplace_back(h);
  for (ComponentId id = 0; id < kRubisComponents; ++id) {
    const MetricSeries& recorded = incident.record.metrics[id];
    const TimeSec start =
        recorded.endTime() - static_cast<TimeSec>(recorded.size());
    slaves[id].addComponent(id, start);
    for (TimeSec t = start; t < recorded.endTime(); ++t) {
      if (telemetry.sampleDropped(id, t)) continue;
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = recorded.of(kind).at(t);
      }
      slaves[id].ingestAt(id, t, sample);
    }
  }

  core::FChainMaster master;
  master.setWorkerThreads(threads);
  for (ComponentId id = 0; id < kRubisComponents; ++id) {
    const bool dead = (id + trial) % kRubisComponents == 0;  // one per trial
    if (!dead) {
      master.registerSlave(&slaves[id]);
      continue;
    }
    runtime::FlakyConfig blackout;
    blackout.outage_windows = {
        {0, incident.record.metrics[id].endTime() + 1}};
    master.registerEndpoint(
        std::make_shared<runtime::FlakyEndpoint>(
            std::make_shared<runtime::LocalEndpoint>(&slaves[id]), blackout),
        {id});
  }
  return master.localize({0, 1, 2, 3}, incident.tv);
}

bool lossyEquivalence(std::uint64_t seed) {
  std::printf(
      "Lossy-telemetry equivalence (10 %% loss, rotating dead slave)\n");
  std::vector<Incident> incidents;
  for (std::size_t trial = 0; incidents.size() < 3 && trial < 12; ++trial) {
    if (auto incident = simulateIncident(mixSeed(seed, 0xbead, trial))) {
      incidents.push_back(std::move(*incident));
    }
  }
  if (incidents.empty()) {
    std::printf("  no incident produced an SLO violation\n\n");
    return false;
  }
  bool all_identical = true;
  for (std::size_t trial = 0; trial < incidents.size(); ++trial) {
    const auto serial = lossyVerdict(incidents[trial], trial, 0, seed);
    const auto parallel = lossyVerdict(incidents[trial], trial, 4, seed);
    const bool identical = samePinpoint(serial, parallel);
    all_identical = all_identical && identical;
    std::printf("  trial %zu: coverage %.2f, %s\n", trial, serial.coverage,
                identical ? "serial == parallel" : "MISMATCH");
  }
  std::printf("\n");
  return all_identical;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t repetitions = 3;
  std::uint64_t seed = 42;
  if (argc > 1) repetitions = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);

  std::printf(
      "Parallel localization overhead (extends Table II; best of %zu)\n\n",
      repetitions);
  const SweepOutcome compute = sweepSynthetic(
      "Sweep 1: in-process transports (pure compute scaling)", repetitions,
      seed);
  // 25 ms per-batch analyze delay — a LAN-ish round-trip plus analysis cost
  // at each monitoring host, well under the default 200 ms request deadline.
  const SweepOutcome socket = sweepSockets(
      "Sweep 2: real unix-socket transports (25 ms per-slave analyze delay)",
      25.0, repetitions, seed);
  const bool lossy_ok = lossyEquivalence(seed);

  // With FCHAIN_TRACE=1 every localize() above recorded master / pool /
  // slave / signal-kernel spans; dump them for offline inspection (CI
  // uploads the JSON as an artifact).
  benchutil::maybeDumpTrace("bench_table2_parallel_overhead");

  bool failed = false;
  if (!compute.all_identical || !socket.all_identical || !lossy_ok) {
    std::printf("FAILURE: parallel verdict diverged from serial\n");
    failed = true;
  }
  if (socket.headline_speedup < 2.0) {
    std::printf(
        "FAILURE: socket 32-component / 4-thread speedup %.2fx is below 2x\n",
        socket.headline_speedup);
    failed = true;
  }
  if (failed) return 1;
  std::printf(
      "All parallel verdicts bit-identical to serial; socket headline "
      "speedup %.2fx.\n",
      socket.headline_speedup);
  return 0;
}
