// Extends the Table-II overhead study to the parallel localization engine:
// sweeps component count × worker-thread count and reports serial vs
// parallel end-to-end localization latency (the paper's "analysis time"
// budget, §III-G — FChain's headline claim is pinpointing within seconds of
// the SLO violation).
//
// Three parts:
//   1. In-process sweep — N components spread round-robin over S slaves,
//      each with a 700 s six-metric stream and one CpuHog-style step on the
//      last component; LocalEndpoint transports, so the cells measure pure
//      compute scaling (needs real cores to show > 1×).
//   2. Emulated-WAN sweep — the same cluster behind a WanEndpoint decorator
//      that blocks the calling thread for one simulated network round-trip
//      per request, the way the paper's deployment pays a real RPC to each
//      monitoring host. Here the engine's two levers are measurable even on
//      a single-core machine: batching turns N per-component requests into
//      S per-slave requests, and the worker pool overlaps the S round-trips.
//      The 32-component / 4-slave / 4-thread cell must clear 2× or the
//      bench exits nonzero.
//   3. Lossy-telemetry equivalence — replays the bench_robustness scenarios
//      (10 % sample loss, rotating dead slave behind a FlakyEndpoint
//      blackout) through both engines.
//
// Every parallel cell in every part must return a PinpointResult
// bit-identical to the serial reference; each table prints the identity
// check per row.
//
// Usage: bench_table2_parallel_overhead [repetitions] [seed]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "fchain/fchain.h"
#include "runtime/flaky_endpoint.h"
#include "sim/injector.h"
#include "sim/simulator.h"

namespace {

using namespace fchain;
using Clock = std::chrono::steady_clock;

constexpr TimeSec kStreamLen = 700;
constexpr TimeSec kFaultStart = 600;

double msSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

bool sameFinding(const core::ComponentFinding& a,
                 const core::ComponentFinding& b) {
  if (a.component != b.component || a.onset != b.onset || a.trend != b.trend ||
      a.metrics.size() != b.metrics.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    const core::MetricFinding& ma = a.metrics[i];
    const core::MetricFinding& mb = b.metrics[i];
    if (ma.metric != mb.metric || ma.onset != mb.onset ||
        ma.change_point != mb.change_point || ma.trend != mb.trend ||
        ma.prediction_error != mb.prediction_error ||
        ma.expected_error != mb.expected_error) {
      return false;
    }
  }
  return true;
}

bool samePinpoint(const core::PinpointResult& a,
                  const core::PinpointResult& b) {
  if (a.pinpointed != b.pinpointed || a.external_factor != b.external_factor ||
      a.external_trend != b.external_trend || a.coverage != b.coverage ||
      a.unanalyzed != b.unanalyzed || a.chain.size() != b.chain.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.chain.size(); ++i) {
    if (!sameFinding(a.chain[i], b.chain[i])) return false;
  }
  return true;
}

/// Synthetic monitored cluster: `components` VMs round-robin across
/// `slave_count` slaves, each streaming 700 s of noisy six-metric samples;
/// the last component takes a CpuHog-style step at t=600.
struct SyntheticCluster {
  std::vector<core::FChainSlave> slaves;
  std::vector<ComponentId> components;
  TimeSec tv = kStreamLen - 1;
};

SyntheticCluster buildCluster(std::size_t components, std::size_t slave_count,
                              std::uint64_t seed) {
  SyntheticCluster cluster;
  cluster.slaves.reserve(slave_count);
  for (HostId h = 0; h < slave_count; ++h) cluster.slaves.emplace_back(h);
  for (ComponentId id = 0; id < components; ++id) {
    cluster.components.push_back(id);
    cluster.slaves[id % slave_count].addComponent(id, 0);
  }
  const ComponentId faulty = static_cast<ComponentId>(components - 1);
  for (ComponentId id = 0; id < components; ++id) {
    Rng rng(mixSeed(seed, 0xc105, id));
    core::FChainSlave& slave = cluster.slaves[id % slave_count];
    std::array<double, kMetricCount> level{45.0, 900.0, 210.0,
                                           180.0, 35.0,  60.0};
    for (TimeSec t = 0; t < kStreamLen; ++t) {
      std::array<double, kMetricCount> sample{};
      const bool hogged = id == faulty && t >= kFaultStart;
      for (std::size_t m = 0; m < kMetricCount; ++m) {
        // AR(1)-flavoured wander plus white jitter keeps CUSUM's bootstrap
        // honestly busy (a constant series would short-circuit selection).
        level[m] += rng.uniform(-0.4, 0.4);
        double value = level[m] + rng.uniform(-1.5, 1.5);
        if (hogged && m == 0) value *= 1.6;  // CPU step
        sample[m] = value;
      }
      slave.ingest(id, sample);
    }
  }
  return cluster;
}

/// Emulates the cloud deployment's network: every transport round-trip
/// blocks the calling thread for `rtt_ms` before the in-process slave
/// answers. The sleep never changes a reply, so determinism holds; it only
/// makes the cost of a round-trip real, which is what lets a single-core
/// machine observe the fan-out overlapping S slave RPCs in the time of one.
class WanEndpoint final : public runtime::SlaveEndpoint {
 public:
  WanEndpoint(std::shared_ptr<runtime::SlaveEndpoint> inner, double rtt_ms)
      : inner_(std::move(inner)), rtt_ms_(rtt_ms) {}

  HostId host() const override { return inner_->host(); }

  runtime::ComponentListReply listComponents() override {
    wait();
    return inner_->listComponents();
  }

  runtime::AnalyzeReply analyze(const runtime::AnalyzeRequest& req) override {
    wait();
    auto reply = inner_->analyze(req);
    reply.latency_ms += rtt_ms_;
    return reply;
  }

  runtime::AnalyzeBatchReply analyzeBatch(
      const runtime::AnalyzeBatchRequest& req) override {
    wait();
    auto reply = inner_->analyzeBatch(req);
    reply.latency_ms += rtt_ms_;
    return reply;
  }

 private:
  void wait() const {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(rtt_ms_));
  }

  std::shared_ptr<runtime::SlaveEndpoint> inner_;
  double rtt_ms_;
};

struct TimedRun {
  core::PinpointResult result;
  double best_ms = 0.0;
};

TimedRun timeLocalize(SyntheticCluster& cluster, int threads,
                      int slave_threads, std::size_t repetitions,
                      double rtt_ms) {
  core::FChainMaster master;
  master.setWorkerThreads(threads);
  for (std::size_t s = 0; s < cluster.slaves.size(); ++s) {
    core::FChainSlave& slave = cluster.slaves[s];
    slave.setAnalysisThreads(slave_threads);
    if (rtt_ms <= 0.0) {
      master.registerSlave(&slave);
      continue;
    }
    std::vector<ComponentId> manifest;
    for (ComponentId id : cluster.components) {
      if (id % cluster.slaves.size() == s) manifest.push_back(id);
    }
    master.registerEndpoint(
        std::make_shared<WanEndpoint>(
            std::make_shared<runtime::LocalEndpoint>(&slave), rtt_ms),
        manifest);
  }
  TimedRun run;
  run.best_ms = 1e300;
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    const auto start = Clock::now();
    run.result = master.localize(cluster.components, cluster.tv);
    run.best_ms = std::min(run.best_ms, msSince(start));
  }
  for (core::FChainSlave& slave : cluster.slaves) {
    slave.setAnalysisThreads(0);
  }
  return run;
}

struct SweepOutcome {
  bool all_identical = true;
  /// Speedup of the 32-component / 4-thread cell (the acceptance headline).
  double headline_speedup = 0.0;
};

SweepOutcome sweepSynthetic(const char* title, double rtt_ms,
                            std::size_t repetitions, std::uint64_t seed) {
  constexpr std::size_t kSlaves = 4;
  std::printf("%s (%zu slaves)\n", title, kSlaves);
  std::printf("  %-12s %-10s %-12s %-12s %-10s %s\n", "components", "threads",
              "serial_ms", "parallel_ms", "speedup", "identical");
  SweepOutcome outcome;
  for (std::size_t components : {8u, 16u, 32u, 64u}) {
    SyntheticCluster cluster = buildCluster(components, kSlaves, seed);
    const TimedRun serial = timeLocalize(cluster, /*threads=*/0,
                                         /*slave_threads=*/0, repetitions,
                                         rtt_ms);
    for (int threads : {1, 2, 4, 8}) {
      // Threads beyond the slave count flow into slave-side batch analysis
      // (each slave fans its own components out across the spare cores).
      const int slave_threads =
          threads > static_cast<int>(kSlaves)
              ? threads / static_cast<int>(kSlaves)
              : 0;
      const TimedRun parallel = timeLocalize(cluster, threads, slave_threads,
                                             repetitions, rtt_ms);
      const bool identical = samePinpoint(serial.result, parallel.result);
      outcome.all_identical = outcome.all_identical && identical;
      const double speedup = serial.best_ms / parallel.best_ms;
      if (components == 32 && threads == 4) {
        outcome.headline_speedup = speedup;
      }
      std::printf("  %-12zu %-10d %-12.2f %-12.2f %-10.2f %s\n", components,
                  threads, serial.best_ms, parallel.best_ms, speedup,
                  identical ? "yes" : "NO");
    }
  }
  std::printf("\n");
  return outcome;
}

// --- Part 2: lossy-telemetry equivalence ----------------------------------

constexpr ComponentId kFaultyDb = 3;
constexpr std::size_t kRubisComponents = 4;

struct Incident {
  sim::RunRecord record;
  TimeSec tv = 0;
};

std::optional<Incident> simulateIncident(std::uint64_t seed) {
  sim::ScenarioConfig config;
  config.kind = sim::AppKind::Rubis;
  config.seed = seed;
  faults::FaultSpec fault;
  fault.type = faults::FaultType::CpuHog;
  fault.targets = {kFaultyDb};
  fault.start_time = 2000;
  fault.intensity = 1.35;
  config.faults = {fault};
  auto result = sim::runScenario(config);
  if (!result.record.violation_time.has_value()) return std::nullopt;
  return Incident{std::move(result.record), *result.record.violation_time};
}

/// Replays one recorded incident through 10 % sample loss and a rotating
/// blackout slave (the bench_robustness_lossy_telemetry setup), localizing
/// with the given engine configuration.
core::PinpointResult lossyVerdict(const Incident& incident, std::size_t trial,
                                  int threads, std::uint64_t seed) {
  sim::TelemetryFaultSpec loss;
  loss.type = sim::TelemetryFaultType::SampleDropBurst;
  loss.rate = 0.10;
  loss.seed = mixSeed(seed, 1, trial);
  sim::TelemetryFaultInjector telemetry({loss});

  std::vector<core::FChainSlave> slaves;
  slaves.reserve(kRubisComponents);
  for (HostId h = 0; h < kRubisComponents; ++h) slaves.emplace_back(h);
  for (ComponentId id = 0; id < kRubisComponents; ++id) {
    const MetricSeries& recorded = incident.record.metrics[id];
    const TimeSec start =
        recorded.endTime() - static_cast<TimeSec>(recorded.size());
    slaves[id].addComponent(id, start);
    for (TimeSec t = start; t < recorded.endTime(); ++t) {
      if (telemetry.sampleDropped(id, t)) continue;
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] = recorded.of(kind).at(t);
      }
      slaves[id].ingestAt(id, t, sample);
    }
  }

  core::FChainMaster master;
  master.setWorkerThreads(threads);
  for (ComponentId id = 0; id < kRubisComponents; ++id) {
    const bool dead = (id + trial) % kRubisComponents == 0;  // one per trial
    if (!dead) {
      master.registerSlave(&slaves[id]);
      continue;
    }
    runtime::FlakyConfig blackout;
    blackout.outage_windows = {
        {0, incident.record.metrics[id].endTime() + 1}};
    master.registerEndpoint(
        std::make_shared<runtime::FlakyEndpoint>(
            std::make_shared<runtime::LocalEndpoint>(&slaves[id]), blackout),
        {id});
  }
  return master.localize({0, 1, 2, 3}, incident.tv);
}

bool lossyEquivalence(std::uint64_t seed) {
  std::printf(
      "Lossy-telemetry equivalence (10 %% loss, rotating dead slave)\n");
  std::vector<Incident> incidents;
  for (std::size_t trial = 0; incidents.size() < 3 && trial < 12; ++trial) {
    if (auto incident = simulateIncident(mixSeed(seed, 0xbead, trial))) {
      incidents.push_back(std::move(*incident));
    }
  }
  if (incidents.empty()) {
    std::printf("  no incident produced an SLO violation\n\n");
    return false;
  }
  bool all_identical = true;
  for (std::size_t trial = 0; trial < incidents.size(); ++trial) {
    const auto serial = lossyVerdict(incidents[trial], trial, 0, seed);
    const auto parallel = lossyVerdict(incidents[trial], trial, 4, seed);
    const bool identical = samePinpoint(serial, parallel);
    all_identical = all_identical && identical;
    std::printf("  trial %zu: coverage %.2f, %s\n", trial, serial.coverage,
                identical ? "serial == parallel" : "MISMATCH");
  }
  std::printf("\n");
  return all_identical;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t repetitions = 3;
  std::uint64_t seed = 42;
  if (argc > 1) repetitions = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) seed = std::strtoull(argv[2], nullptr, 10);

  std::printf(
      "Parallel localization overhead (extends Table II; best of %zu)\n\n",
      repetitions);
  const SweepOutcome compute = sweepSynthetic(
      "Sweep 1: in-process transports (pure compute scaling)", 0.0,
      repetitions, seed);
  // 25 ms RTT — a LAN-ish round-trip to each monitoring host, well under the
  // default 200 ms request deadline.
  const SweepOutcome wan = sweepSynthetic(
      "Sweep 2: emulated WAN transports (25 ms blocking round-trip)", 25.0,
      repetitions, seed);
  const bool lossy_ok = lossyEquivalence(seed);

  // With FCHAIN_TRACE=1 every localize() above recorded master / pool /
  // slave / signal-kernel spans; dump them for offline inspection (CI
  // uploads the JSON as an artifact).
  benchutil::maybeDumpTrace("bench_table2_parallel_overhead");

  bool failed = false;
  if (!compute.all_identical || !wan.all_identical || !lossy_ok) {
    std::printf("FAILURE: parallel verdict diverged from serial\n");
    failed = true;
  }
  if (wan.headline_speedup < 2.0) {
    std::printf(
        "FAILURE: WAN 32-component / 4-thread speedup %.2fx is below 2x\n",
        wan.headline_speedup);
    failed = true;
  }
  if (failed) return 1;
  std::printf(
      "All parallel verdicts bit-identical to serial; WAN headline speedup "
      "%.2fx.\n",
      wan.headline_speedup);
  return 0;
}
