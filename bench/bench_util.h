// Shared plumbing for the per-figure benchmark binaries: build the scheme
// roster, run a figure's fault cases, print the paper-shaped tables.
//
// Each binary accepts [trials] [base_seed] on the command line (defaults:
// 30 trials — the paper used 30-40 runs per fault — and seed 42).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/fchain_scheme.h"
#include "baselines/graph_schemes.h"
#include "baselines/histogram_scheme.h"
#include "baselines/netmedic.h"
#include "eval/report.h"
#include "eval/runner.h"
#include "obs/trace.h"

namespace fchain::benchutil {

/// When FCHAIN_TRACE is set in the environment the global tracer self-enables
/// on first use and the pipeline's instrumentation records spans; this dumps
/// everything accumulated so far as Chrome trace JSON (`<name>.trace.json`,
/// viewable in chrome://tracing or https://ui.perfetto.dev) plus the per-span
/// summary table on stdout. No-op (returns false) when tracing is off, so
/// every bench can call it unconditionally after its runs.
inline bool maybeDumpTrace(const char* bench_name) {
  obs::Tracer& tracer = obs::tracer();
  if (!tracer.enabled()) return false;
  const std::string path = std::string(bench_name) + ".trace.json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) {
    std::fprintf(stderr, "[obs] cannot write %s\n", path.c_str());
    return false;
  }
  tracer.writeChromeTrace(out);
  std::printf("\n[obs] wrote %s (%zu spans) — load it in chrome://tracing "
              "or https://ui.perfetto.dev\n",
              path.c_str(), tracer.records().size());
  tracer.writeSummary(std::cout);
  return true;
}

struct Args {
  std::size_t trials = 30;
  std::uint64_t seed = 42;
};

inline Args parseArgs(int argc, char** argv) {
  Args args;
  if (argc > 1) args.trials = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) args.seed = std::strtoull(argv[2], nullptr, 10);
  return args;
}

/// The six schemes of the paper's comparison (Fixed-Filtering has its own
/// dedicated figure). The FChain config (with the case's look-back window
/// etc.) is shared by the change-point-based schemes.
inline std::vector<std::unique_ptr<baselines::FaultLocalizer>> makeSchemes(
    const core::FChainConfig& config) {
  std::vector<std::unique_ptr<baselines::FaultLocalizer>> schemes;
  schemes.push_back(std::make_unique<baselines::FChainScheme>(config));
  schemes.push_back(std::make_unique<baselines::HistogramScheme>(
      config.lookback_sec));
  schemes.push_back(std::make_unique<baselines::NetMedicScheme>());
  schemes.push_back(std::make_unique<baselines::TopologyScheme>(config));
  schemes.push_back(std::make_unique<baselines::DependencyScheme>(config));
  schemes.push_back(std::make_unique<baselines::PalScheme>(config));
  return schemes;
}

/// Runs one fault case against the full scheme roster and prints both the
/// full ROC sweep and the best-point summary.
inline void runCase(const eval::FaultCase& fault_case, const Args& args) {
  eval::TrialOptions options;
  options.trials = args.trials;
  options.base_seed = args.seed;
  const auto set = eval::generateTrials(fault_case, options);
  if (set.trials.empty()) {
    std::printf("== %s: no trial produced an SLO violation ==\n\n",
                fault_case.label.c_str());
    return;
  }

  const auto schemes = makeSchemes(fault_case.fchain_config);
  std::vector<const baselines::FaultLocalizer*> scheme_ptrs;
  for (const auto& scheme : schemes) scheme_ptrs.push_back(scheme.get());
  const auto curves = eval::evaluateSchemes(scheme_ptrs, set);

  eval::printCurves(std::cout, fault_case.label, curves, set.trials.size());
  eval::printBestSummary(std::cout, fault_case.label, curves);
}

inline int runFigure(const char* title, std::vector<eval::FaultCase> cases,
                     int argc, char** argv) {
  const Args args = parseArgs(argc, argv);
  std::printf("%s\n", title);
  std::printf("(%zu trials per fault, base seed %llu)\n\n", args.trials,
              static_cast<unsigned long long>(args.seed));
  for (const auto& fault_case : cases) runCase(fault_case, args);
  return 0;
}

}  // namespace fchain::benchutil
