// fchain_cli: an operator-style command-line tool over the library.
//
//   fchain_cli simulate <case-label> <seed> <out.rec>
//       run one scenario (e.g. RUBiS/CpuHog) and archive the incident
//       record — exactly what a monitoring deployment would have logged.
//   fchain_cli diagnose <in.rec>
//       re-diagnose an archived incident: black-box dependency discovery +
//       FChain with the adaptive look-back window.
//   fchain_cli export <in.rec> <metrics.csv>
//       dump the 1 Hz metric matrix as CSV for plotting.
//   fchain_cli cases
//       list the known scenario labels.
#include <cstdio>
#include <cstring>
#include <string>

#include "eval/exporter.h"
#include "eval/runner.h"
#include "fchain/adaptive.h"
#include "netdep/dependency.h"
#include "sim/record_io.h"

using namespace fchain;

namespace {

std::vector<eval::FaultCase> allCases() {
  auto cases = eval::allPaperCases();
  for (auto& extension : eval::extensionCases()) {
    cases.push_back(std::move(extension));
  }
  return cases;
}

int cmdCases() {
  for (const auto& fault_case : allCases()) {
    std::printf("%s\n", fault_case.label.c_str());
  }
  return 0;
}

int cmdSimulate(const std::string& label, std::uint64_t seed,
                const std::string& out_path) {
  for (const auto& fault_case : allCases()) {
    if (fault_case.label != label) continue;
    eval::TrialOptions options;
    options.trials = 1;
    options.base_seed = seed;
    const auto set = eval::generateTrials(fault_case, options);
    if (set.trials.empty()) {
      std::fprintf(stderr,
                   "the run finished without an SLO violation; try another "
                   "seed\n");
      return 2;
    }
    sim::saveRecord(out_path, set.trials.front().record);
    std::printf("saved incident record to %s (violation at t=%lld)\n",
                out_path.c_str(),
                static_cast<long long>(
                    *set.trials.front().record.violation_time));
    return 0;
  }
  std::fprintf(stderr, "unknown case '%s' (see: fchain_cli cases)\n",
               label.c_str());
  return 1;
}

int cmdDiagnose(const std::string& in_path) {
  const auto record = sim::loadRecord(in_path);
  if (!record.violation_time.has_value()) {
    std::printf("record carries no SLO violation; nothing to diagnose\n");
    return 0;
  }
  const auto dependencies = netdep::discoverDependencies(record);
  std::printf("dependencies discovered: %zu edges\n",
              dependencies.edgeCount());

  const auto adaptive =
      core::localizeRecordAdaptive(record, &dependencies);
  std::printf("look-back window: %lld s (%zu rung%s tried)\n",
              static_cast<long long>(adaptive.chosen_window),
              adaptive.rungs_tried, adaptive.rungs_tried == 1 ? "" : "s");
  if (adaptive.result.external_factor) {
    std::printf("verdict: EXTERNAL FACTOR (%s trend)\n",
                std::string(trendName(adaptive.result.external_trend)).c_str());
    return 0;
  }
  std::printf("propagation chain:");
  for (const auto& finding : adaptive.result.chain) {
    std::printf(" %s@%lld",
                record.app_spec.components[finding.component].name.c_str(),
                static_cast<long long>(finding.onset));
  }
  std::printf("\npinpointed:");
  for (ComponentId id : adaptive.result.pinpointed) {
    std::printf(" %s", record.app_spec.components[id].name.c_str());
  }
  std::printf("\n");
  if (!record.ground_truth.empty()) {
    std::printf("(archived ground truth:");
    for (ComponentId id : record.ground_truth) {
      std::printf(" %s", record.app_spec.components[id].name.c_str());
    }
    std::printf(")\n");
  }
  return 0;
}

int cmdExport(const std::string& in_path, const std::string& csv_path) {
  const auto record = sim::loadRecord(in_path);
  eval::writeMetricsCsv(csv_path, record);
  std::printf("wrote %s\n", csv_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string command = argc > 1 ? argv[1] : "";
  try {
    if (command == "cases") return cmdCases();
    if (command == "simulate" && argc == 5) {
      return cmdSimulate(argv[2], std::strtoull(argv[3], nullptr, 10),
                         argv[4]);
    }
    if (command == "diagnose" && argc == 3) return cmdDiagnose(argv[2]);
    if (command == "export" && argc == 4) return cmdExport(argv[2], argv[3]);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  std::fprintf(stderr,
               "usage:\n"
               "  fchain_cli cases\n"
               "  fchain_cli simulate <case-label> <seed> <out.rec>\n"
               "  fchain_cli diagnose <in.rec>\n"
               "  fchain_cli export <in.rec> <metrics.csv>\n");
  return 1;
}
