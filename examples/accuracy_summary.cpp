// accuracy_summary: run N trials of every paper fault case and print
// FChain's aggregate precision/recall per case — a quick health check of the
// whole reproduction (the per-figure benches in bench/ give the full
// scheme-by-scheme comparison).
//
// Usage: accuracy_summary [trials] [base_seed] [case-substring]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/fchain_scheme.h"
#include "eval/report.h"
#include "eval/runner.h"

using namespace fchain;

int main(int argc, char** argv) {
  const std::size_t trials =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 10;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  const std::string filter = argc > 3 ? argv[3] : "";

  std::printf("%-22s %7s %7s %5s %5s %5s %7s\n", "case", "prec", "recall",
              "tp", "fp", "fn", "trials");
  for (const auto& fault_case : eval::allPaperCases()) {
    if (!filter.empty() &&
        fault_case.label.find(filter) == std::string::npos) {
      continue;
    }
    eval::TrialOptions options;
    options.trials = trials;
    options.base_seed = seed;
    const auto set = eval::generateTrials(fault_case, options);

    baselines::FChainScheme scheme(fault_case.fchain_config);
    eval::Counts counts;
    for (const auto& trial : set.trials) {
      const auto pinpointed =
          scheme.localize(eval::inputFor(trial), scheme.defaultThreshold());
      counts.accumulate(pinpointed, trial.record.ground_truth);
    }
    std::printf("%-22s %7.3f %7.3f %5zu %5zu %5zu %4zu/%zu\n",
                fault_case.label.c_str(), counts.precision(), counts.recall(),
                counts.tp, counts.fp, counts.fn, set.trials.size(),
                set.attempted);
  }
  return 0;
}
