// workload_change: distinguishing an external factor from a component fault
// (paper §II-C).
//
// A client-side workload surge violates the SLO just like a fault would —
// but every component's metrics move together, in the same direction. FChain
// recognizes the uniform-trend pattern and refuses to blame any component,
// where a naive localizer would page the on-call about an innocent VM.
//
// The second case is a deliberate *boundary* demo: a shared-storage (NFS)
// slowdown under Hadoop. The paper's rule needs ALL components to manifest
// the downward trend, but the reduce nodes' burst-structured metrics absorb
// the degradation (the same property that protects them from false alarms
// in the DiskHog experiments), so only the disk-bound map tier is flagged
// and FChain attributes the incident to it. From inside the guest VMs this
// is indistinguishable from a Domain-0 disk hog on the map hosts — a
// genuine observability limit of black-box localization, documented in
// EXPERIMENTS.md.
#include <cstdio>

#include "fchain/fchain.h"
#include "netdep/dependency.h"

using namespace fchain;

namespace {

void diagnose(const char* label, const sim::ScenarioConfig& scenario) {
  const auto result = sim::runScenario(scenario);
  std::printf("--- %s ---\n", label);
  if (!result.record.violation_time.has_value()) {
    std::printf("no SLO violation\n\n");
    return;
  }
  const auto& record = result.record;
  std::printf("SLO violated at t=%lld\n",
              static_cast<long long>(*record.violation_time));
  const auto discovered = netdep::discoverDependencies(record);
  const auto verdict = core::localizeRecord(record, &discovered, {});
  std::printf("abnormal components: %zu of %zu\n", verdict.chain.size(),
              record.metrics.size());
  if (verdict.external_factor) {
    std::printf("verdict: EXTERNAL FACTOR, %s trend -> %s\n\n",
                std::string(trendName(verdict.external_trend)).c_str(),
                verdict.external_trend == Trend::Up
                    ? "workload increase (provision more capacity)"
                    : "shared-service degradation (check NFS / storage)");
    return;
  }
  std::printf("pinpointed:");
  for (ComponentId id : verdict.pinpointed) {
    std::printf(" %s", record.app_spec.components[id].name.c_str());
  }
  std::printf("\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  sim::ScenarioConfig surge;
  surge.kind = sim::AppKind::Rubis;
  surge.seed = seed;
  faults::FaultSpec surge_fault;
  surge_fault.type = faults::FaultType::WorkloadSurge;
  surge_fault.start_time = 2200;
  surge.faults = {surge_fault};
  diagnose("client workload surge (RUBiS)", surge);

  sim::ScenarioConfig nfs;
  nfs.kind = sim::AppKind::Hadoop;
  nfs.seed = seed;
  faults::FaultSpec nfs_fault;
  nfs_fault.type = faults::FaultType::SharedSlowdown;
  nfs_fault.start_time = 2200;
  nfs.faults = {nfs_fault};
  diagnose("shared storage slowdown (Hadoop, boundary case)", nfs);

  // Contrast: a real single-component fault is NOT classified external.
  sim::ScenarioConfig hog;
  hog.kind = sim::AppKind::Rubis;
  hog.seed = seed;
  faults::FaultSpec hog_fault;
  hog_fault.type = faults::FaultType::CpuHog;
  hog_fault.targets = {3};
  hog_fault.start_time = 2200;
  hog_fault.intensity = 1.35;
  hog.faults = {hog_fault};
  diagnose("CPU hog in the db VM (contrast case)", hog);
  return 0;
}
