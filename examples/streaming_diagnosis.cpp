// streaming_diagnosis: why FChain still works when dependency discovery
// cannot (paper §II-C).
//
// IBM System S ships tuples as gap-free continuous packet streams, so the
// gap-based black-box dependency discovery tool extracts a single endless
// flow per edge and never accumulates enough flows to declare any
// dependency. A dependency-only localizer then degenerates to "blame every
// abnormal component". FChain falls back to its change-propagation
// chronology and still pinpoints the culprit PE.
#include <cstdio>

#include "baselines/graph_schemes.h"
#include "fchain/fchain.h"
#include "netdep/dependency.h"

using namespace fchain;

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  // A memory leak in PE3 of the System S tax application (Fig. 2 topology).
  sim::ScenarioConfig scenario;
  scenario.kind = sim::AppKind::SystemS;
  scenario.seed = seed;
  faults::FaultSpec leak;
  leak.type = faults::FaultType::MemLeak;
  leak.targets = {2};  // PE3
  leak.start_time = 2100;
  scenario.faults = {leak};

  const auto result = sim::runScenario(scenario);
  if (!result.record.violation_time.has_value()) {
    std::printf("no SLO violation (seed %llu); try another seed\n",
                static_cast<unsigned long long>(seed));
    return 1;
  }
  const auto& record = result.record;
  std::printf("per-tuple SLO violated at t=%lld (leak in PE3 at t=2100)\n",
              static_cast<long long>(*record.violation_time));

  // Gap-based discovery over the tuple streams: nothing.
  const auto discovered = netdep::discoverDependencies(record);
  std::printf(
      "dependency discovery on the gap-free streams found %zu edges "
      "(the paper's negative result)\n",
      discovered.edgeCount());

  // The Dependency baseline degenerates to every abnormal component.
  baselines::DependencyScheme dependency_scheme;
  baselines::LocalizeInput input;
  input.record = &record;
  input.discovered = &discovered;
  const auto topology = netdep::fromTopology(record.app_spec);
  input.topology = &topology;
  const auto blamed =
      dependency_scheme.localize(input, dependency_scheme.defaultThreshold());
  std::printf("Dependency-only scheme blames %zu components:", blamed.size());
  for (ComponentId id : blamed) {
    std::printf(" %s", record.app_spec.components[id].name.c_str());
  }

  // FChain: chronology of abnormal change onsets, no dependencies needed.
  const auto verdict = core::localizeRecord(record, &discovered, {});
  std::printf("\nFChain propagation chain:");
  for (const auto& finding : verdict.chain) {
    std::printf(" %s@%lld",
                record.app_spec.components[finding.component].name.c_str(),
                static_cast<long long>(finding.onset));
  }
  std::printf("\nFChain pinpoints:");
  for (ComponentId id : verdict.pinpointed) {
    std::printf(" %s", record.app_spec.components[id].name.c_str());
  }
  std::printf("  (ground truth: PE3)\n");
  return 0;
}
