// fchain_slave — the out-of-process slave daemon.
//
// Serves the framed wire protocol (src/runtime/wire.h) for one FChainSlave:
// analyze batches, streaming ingest, component discovery. With --state-dir
// every ingested sample is journaled before it mutates the models
// (SlaveCheckpointer, journal-then-ingest), so a kill -9 at any moment is
// healed on the next start: the daemon detects persisted state in the
// directory and rebuilds the slave bit-identically from snapshot + journal
// before listening again.
//
//   fchain_slave --listen <tcp:host:port|unix:path> --host <id>
//                --components <id[:start],...>
//                [--state-dir <dir>]          enable checkpoint + recovery
//                [--snapshot-interval <sec>]  checkpoint cadence (default 600)
//                [--analyze-delay-ms <ms>]    crash-drill hook: sleep before
//                                             serving each analyze batch
//
// Prints one READY line (host, identity hash, resolved address, recovery
// stats) to stdout once serving, so a supervisor can sequence against it.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "fchain/slave.h"
#include "fchain/slave_service.h"
#include "persist/codec.h"
#include "runtime/socket.h"
#include "runtime/wire.h"

namespace {

using namespace fchain;

struct Options {
  std::string listen;
  HostId host = 0;
  std::vector<std::pair<ComponentId, TimeSec>> components;
  std::string state_dir;
  TimeSec snapshot_interval = 600;
  double analyze_delay_ms = 0.0;
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --listen <tcp:host:port|unix:path> --host <id> "
               "--components <id[:start],...> [--state-dir <dir>] "
               "[--snapshot-interval <sec>] [--analyze-delay-ms <ms>]\n",
               argv0);
  std::exit(2);
}

std::vector<std::pair<ComponentId, TimeSec>> parseComponents(
    const std::string& spec) {
  std::vector<std::pair<ComponentId, TimeSec>> out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string item = spec.substr(pos, comma - pos);
    const std::size_t colon = item.find(':');
    const ComponentId id = static_cast<ComponentId>(
        std::stoul(item.substr(0, colon)));
    const TimeSec start =
        colon == std::string::npos ? 0 : std::stoll(item.substr(colon + 1));
    out.emplace_back(id, start);
    pos = comma + 1;
  }
  return out;
}

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--listen") {
      opt.listen = value();
    } else if (arg == "--host") {
      opt.host = static_cast<HostId>(std::stoul(value()));
    } else if (arg == "--components") {
      opt.components = parseComponents(value());
    } else if (arg == "--state-dir") {
      opt.state_dir = value();
    } else if (arg == "--snapshot-interval") {
      opt.snapshot_interval = std::stoll(value());
    } else if (arg == "--analyze-delay-ms") {
      opt.analyze_delay_ms = std::stod(value());
    } else {
      usage(argv[0]);
    }
  }
  if (opt.listen.empty() || opt.components.empty()) usage(argv[0]);
  return opt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parseArgs(argc, argv);
  // A master vanishing mid-reply must not kill the daemon via SIGPIPE
  // (sends already use MSG_NOSIGNAL; this covers any stray write path).
  std::signal(SIGPIPE, SIG_IGN);

  try {
    // Recover persisted state when present, else start fresh (creating the
    // state directory on first boot, so a supervisor can point every slave
    // at a not-yet-existing per-host subdirectory).
    std::optional<core::FChainSlave> slave;
    std::uint64_t recovered_epoch = 0;
    std::size_t replayed = 0;
    bool journal_clean = true;
    if (!opt.state_dir.empty()) {
      std::filesystem::create_directories(opt.state_dir);
    }
    const bool has_state =
        !opt.state_dir.empty() &&
        core::SlaveCheckpointer::hasState(opt.state_dir, opt.host);
    if (has_state) {
      auto recovered =
          core::SlaveCheckpointer::recover(opt.state_dir, opt.host);
      slave.emplace(std::move(recovered.slave));
      recovered_epoch = recovered.epoch;
      replayed = recovered.replayed;
      journal_clean = recovered.journal_clean;
    } else {
      slave.emplace(opt.host);
    }
    for (const auto& [id, start] : opt.components) {
      if (!slave->monitors(id)) slave->addComponent(id, start);
    }

    std::optional<core::SlaveCheckpointer> checkpointer;
    if (!opt.state_dir.empty()) {
      core::CheckpointPolicy policy;
      policy.snapshot_interval_sec = opt.snapshot_interval;
      checkpointer.emplace(*slave, opt.state_dir, policy);
    }

    core::SlaveServiceConfig config;
    config.listen = runtime::SocketAddress::parse(opt.listen);
    config.analyze_delay_ms = opt.analyze_delay_ms;
    core::SlaveService service(*slave, config,
                               checkpointer ? &*checkpointer : nullptr);
    std::printf("READY host=%u identity=%016llx addr=%s recovered=%d "
                "epoch=%llu replayed=%zu journal_clean=%d\n",
                opt.host,
                static_cast<unsigned long long>(service.identityHash()),
                service.address().str().c_str(), has_state ? 1 : 0,
                static_cast<unsigned long long>(recovered_epoch), replayed,
                journal_clean ? 1 : 0);
    std::fflush(stdout);
    service.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fchain_slave: %s\n", e.what());
    return 1;
  }
  return 0;
}
