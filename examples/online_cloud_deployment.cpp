// online_cloud_deployment: the full FChain system shape from Fig. 1 of the
// paper, running "live" against a multi-tenant cloud.
//
//   - three tenants (RUBiS, System S, Hadoop) share six dual-core hosts;
//   - one FChain slave runs per host, ingesting the 1 Hz metric samples of
//     every RUBiS VM placed there and keeping the normal-fluctuation models
//     up to date, second by second;
//   - a memory leak hits the RUBiS database VM, while the co-located System
//     S and Hadoop tenants provide realistic cross-tenant interference;
//   - when the latency SLO fires, the FChain master fans the look-back
//     analysis out to the slaves, combines the findings with the
//     offline-discovered dependency graph, and validates the verdict by
//     scaling resources on a snapshot of the world.
#include <cstdio>

#include "fchain/fchain.h"
#include "netdep/dependency.h"
#include "sim/cloud.h"
#include "sim/injector.h"
#include "sim/slo.h"

using namespace fchain;

int main() {
  // --- The cloud: six hosts, three tenants deployed side by side. ---
  Rng rng(7777);
  sim::Cloud cloud(sim::CloudConfig{}, rng.next());
  const std::size_t rubis =
      cloud.deploy(sim::makeApplication(sim::AppKind::Rubis, 3600, rng));
  cloud.deploy(sim::makeApplication(sim::AppKind::SystemS, 3600, rng));
  cloud.deploy(sim::makeApplication(sim::AppKind::Hadoop, 3600, rng));

  // --- FChain: one slave per host, one master. ---
  std::vector<core::FChainSlave> slaves;
  slaves.reserve(cloud.hostCount());
  for (HostId host = 0; host < cloud.hostCount(); ++host) {
    slaves.emplace_back(host);
    for (ComponentId id : cloud.componentsOn(rubis, host)) {
      slaves.back().addComponent(id, 0);
    }
  }
  core::FChainMaster master;
  for (auto& slave : slaves) master.registerSlave(&slave);

  std::printf("deployed 3 tenants on %zu hosts; RUBiS placement:",
              cloud.hostCount());
  for (ComponentId id = 0; id < cloud.app(rubis).componentCount(); ++id) {
    std::printf(" %s->host%u",
                cloud.app(rubis).spec().components[id].name.c_str(),
                cloud.hostOf(rubis, id));
  }
  std::printf("\nper-host NTP skew (ms):");
  for (HostId host = 0; host < cloud.hostCount(); ++host) {
    std::printf(" %.2f", cloud.clockSkewMs(host));
  }
  std::printf("  (all far below the 1 s sampling grid)\n");

  // --- The fault: a memory leak in the RUBiS database VM at t=1900. ---
  sim::FaultInjector injector;
  faults::FaultSpec leak;
  leak.type = faults::FaultType::MemLeak;
  leak.targets = {3};
  leak.start_time = 1900;
  injector.add(leak);

  // --- Live loop: sample, learn, watch the SLO. The per-edge traffic is
  // recorded along the way to feed the offline dependency discovery. ---
  sim::LatencySloMonitor slo(sim::sloLatencyThreshold(sim::AppKind::Rubis),
                             30);
  std::vector<std::vector<double>> traffic_history(
      cloud.app(rubis).spec().edges.size());
  std::optional<TimeSec> tv;
  while (!tv.has_value() && cloud.now() < 3600) {
    injector.apply(cloud.app(rubis), cloud.now());
    cloud.step();
    for (std::size_t e = 0; e < traffic_history.size(); ++e) {
      traffic_history[e].push_back(cloud.app(rubis).edgeTraffic()[e]);
    }
    const TimeSec t = cloud.now() - 1;
    for (ComponentId id = 0; id < cloud.app(rubis).componentCount(); ++id) {
      std::array<double, kMetricCount> sample{};
      for (MetricKind kind : kAllMetrics) {
        sample[metricIndex(kind)] =
            cloud.app(rubis).metricsOf(id).of(kind).at(t);
      }
      slaves[cloud.hostOf(rubis, id)].ingest(id, sample);
    }
    tv = slo.observe(t, cloud.app(rubis).latencySeconds());
  }
  if (!tv.has_value()) {
    std::printf("no SLO violation occurred\n");
    return 1;
  }
  std::printf("\nSLO violation at t=%lld (leak started at t=1900)\n",
              static_cast<long long>(*tv));

  // --- Offline-discovered dependencies (accumulated before the incident).
  // In a real deployment this graph is refreshed out of band; here we
  // synthesize it from the recorded traffic of the same run.
  sim::RunRecord record;
  record.app_spec = cloud.app(rubis).spec();
  for (ComponentId id = 0; id < cloud.app(rubis).componentCount(); ++id) {
    record.metrics.push_back(cloud.app(rubis).metricsOf(id));
  }
  record.edge_traffic = std::move(traffic_history);
  master.setDependencies(netdep::discoverDependencies(record));

  // --- Localization. ---
  std::vector<ComponentId> components;
  for (ComponentId id = 0; id < cloud.app(rubis).componentCount(); ++id) {
    components.push_back(id);
  }
  const auto verdict = master.localize(components, *tv);
  std::printf("propagation chain:");
  for (const auto& finding : verdict.chain) {
    std::printf(" %s@%lld(%s)",
                record.app_spec.components[finding.component].name.c_str(),
                static_cast<long long>(finding.onset),
                std::string(trendName(finding.trend)).c_str());
  }
  std::printf("\npinpointed:");
  for (ComponentId id : verdict.pinpointed) {
    std::printf(" %s", record.app_spec.components[id].name.c_str());
  }
  std::printf("\n");
  return 0;
}
