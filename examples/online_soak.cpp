// online_soak: the always-on monitoring runtime left running for simulated
// hours against a multi-tenant fleet.
//
// Three applications (RUBiS, System S, Hadoop) stream 1 Hz telemetry into
// one OnlineMonitor; each suffers one staggered fault. The monitor latches
// each SLO violation, auto-triggers the master's look-back fan-out (the
// System S incident lands inside the RUBiS cooldown and exercises the
// queued-trigger path), and reports every incident as it completes. The
// deterministic bit-identity version of this run — online pinpoints checked
// byte-for-byte against offline replay — is tests/online_soak_test.cpp;
// this driver is the operator-facing shape of the same loop, suitable for
// multi-hour runs.
//
// Usage: online_soak [ticks] [base_seed]
//   ticks also honours FCHAIN_SOAK_TICKS when no argument is given
//   (default 7200 simulated seconds, floor 5000 so all three faults land).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "netdep/dependency.h"
#include "online/monitor.h"
#include "sim/apps.h"
#include "sim/injector.h"
#include "sim/stream.h"

using namespace fchain;

namespace {

std::size_t soakTicks(int argc, char** argv) {
  unsigned long long ticks = 7200;
  if (argc > 1) {
    ticks = std::strtoull(argv[1], nullptr, 10);
  } else if (const char* env = std::getenv("FCHAIN_SOAK_TICKS");
             env != nullptr && env[0] != '\0') {
    ticks = std::strtoull(env, nullptr, 10);
  }
  // The last fault starts at t=3400; below this floor the run would end
  // before its SLO latch and the "3 incidents" gate could never hold.
  return std::max<std::size_t>(5000, static_cast<std::size_t>(ticks));
}

faults::FaultSpec fault(faults::FaultType type, std::vector<ComponentId> on,
                        TimeSec start, double intensity = 1.0) {
  faults::FaultSpec spec;
  spec.type = type;
  spec.targets = std::move(on);
  spec.start_time = start;
  spec.intensity = intensity;
  return spec;
}

struct FleetApp {
  std::string name;
  sim::ScenarioConfig config;
  ComponentId offset = 0;
  online::SloSpec slo;
};

std::vector<FleetApp> fleet(std::size_t ticks, std::uint64_t seed) {
  std::vector<FleetApp> apps(3);

  apps[0].name = "rubis";
  apps[0].config.kind = sim::AppKind::Rubis;
  apps[0].config.seed = seed;
  apps[0].config.faults = {fault(faults::FaultType::CpuHog, {3}, 2000, 1.35)};
  apps[0].offset = 0;

  apps[1].name = "streams";
  apps[1].config.kind = sim::AppKind::SystemS;
  apps[1].config.seed = seed + 24;
  apps[1].config.faults = {fault(faults::FaultType::CpuHog, {2}, 2300, 1.4)};
  apps[1].offset = 4;

  apps[2].name = "batch";
  apps[2].config.kind = sim::AppKind::Hadoop;
  apps[2].config.seed = seed - 22;
  apps[2].config.faults = {
      fault(faults::FaultType::InfiniteLoop, {0, 1, 2}, 3400)};
  apps[2].offset = 11;
  apps[2].slo.kind = online::SloSpec::Kind::Progress;

  for (FleetApp& app : apps) {
    app.config.duration_sec = ticks;  // the workload trace must cover the run
    if (app.slo.kind == online::SloSpec::Kind::Latency) {
      app.slo.latency_threshold_sec = sim::sloLatencyThreshold(app.config.kind);
      app.slo.sustain_sec = app.config.slo_sustain_sec;
    }
  }
  return apps;
}

/// Offline dependency discovery per application (the paper runs this ahead
/// of deployment). Capped to one simulated hour so the driver starts fast
/// even when the soak itself runs much longer.
netdep::DependencyGraph discoverFor(const FleetApp& app) {
  sim::ScenarioConfig config = app.config;
  config.duration_sec = std::min<std::size_t>(config.duration_sec, 3600);
  sim::Simulation sim(config);
  sim.runUntil(static_cast<TimeSec>(config.duration_sec));
  return netdep::discoverDependencies(sim.record());
}

std::string joinIds(const std::vector<ComponentId>& ids) {
  std::ostringstream out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << ",";
    out << ids[i];
  }
  return out.str();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t ticks = soakTicks(argc, argv);
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 77;

  std::printf("online_soak: 3 applications, %zu simulated seconds, seed %llu\n",
              ticks, static_cast<unsigned long long>(seed));

  const std::vector<FleetApp> apps = fleet(ticks, seed);

  online::OnlineMonitorConfig config;
  config.cooldown_sec = 600;
  config.worker_threads = 2;
  config.max_ring_bytes = 768 * 1024;
  online::OnlineMonitor monitor(std::move(config));

  std::vector<std::unique_ptr<sim::StreamingSource>> sources;
  std::vector<std::unique_ptr<core::FChainSlave>> slaves;
  std::vector<std::size_t> app_index;
  ComponentId total_components = 0;
  for (const FleetApp& app : apps) {
    total_components += static_cast<ComponentId>(
        sim::makeAppSpec(app.config.kind).components.size());
  }
  for (std::size_t a = 0; a < apps.size(); ++a) {
    sources.push_back(
        std::make_unique<sim::StreamingSource>(apps[a].config, apps[a].offset));
    auto slave = std::make_unique<core::FChainSlave>(static_cast<HostId>(a));
    for (ComponentId id : sources.back()->componentIds()) {
      slave->addComponent(id, 0);
    }
    monitor.addSlave(slave.get());
    slaves.push_back(std::move(slave));
    app_index.push_back(monitor.addApplication(
        {apps[a].name, sources.back()->componentIds(), apps[a].slo}));

    // Per-application graphs, lifted into the global id space. System S
    // discovery legitimately finds nothing; keeping the graphs separate
    // preserves its chronology-only fallback (see OnlineMonitor docs).
    netdep::DependencyGraph local = discoverFor(apps[a]);
    netdep::DependencyGraph lifted(total_components);
    const auto& adjacency = local.adjacency();
    std::size_t edges = 0;
    for (ComponentId from = 0; from < adjacency.size(); ++from) {
      for (ComponentId to : adjacency[from]) {
        lifted.addEdge(apps[a].offset + from, apps[a].offset + to);
        ++edges;
      }
    }
    monitor.setDependencies(app_index.back(), lifted);
    std::printf("  [%s] %zu components, %zu discovered dependency edges\n",
                apps[a].name.c_str(), sources.back()->componentIds().size(),
                edges);
  }

  monitor.onIncident([&](const online::OnlineIncident& incident) {
    std::printf(
        "t=%5lld  INCIDENT %-8s tv=%lld trigger_delay=%llds "
        "localize=%.1fms pinpointed={%s}\n",
        static_cast<long long>(monitor.clock()), incident.app_name.c_str(),
        static_cast<long long>(incident.violation_time),
        static_cast<long long>(incident.queued_delay_sec),
        incident.localize_wall_ms,
        joinIds(incident.result.pinpointed).c_str());
  });

  const sim::StreamingSource::SampleSink sink =
      [&](const sim::StreamSample& sample) { monitor.ingest(sample); };
  bool ring_overflow = false;
  for (std::size_t tick = 0; tick < ticks; ++tick) {
    for (std::size_t a = 0; a < apps.size(); ++a) {
      const sim::StreamTick st = sources[a]->step(sink);
      monitor.observe(app_index[a], st);
    }
    monitor.pump();
    if (monitor.ringOccupancy() > monitor.ringCapacity()) {
      ring_overflow = true;
    }
  }
  monitor.drain();

  const auto snapshot = monitor.metrics().snapshot();
  std::printf("\nsoak summary (%zu ticks)\n", ticks);
  std::printf("  %-26s %10llu\n", "samples ingested",
              static_cast<unsigned long long>(
                  snapshot.counters.at("online.ingest_samples")));
  std::printf("  %-26s %10llu\n", "SLO latches",
              static_cast<unsigned long long>(
                  snapshot.counters.at("online.slo_latches")));
  std::printf("  %-26s %10llu (%llu queued, %llu dropped)\n",
              "localizations triggered",
              static_cast<unsigned long long>(
                  snapshot.counters.at("online.triggers")),
              static_cast<unsigned long long>(
                  snapshot.counters.at("online.incidents_queued")),
              static_cast<unsigned long long>(
                  snapshot.counters.at("online.incidents_dropped")));
  std::printf("  %-26s %10.0f / %zu samples%s\n", "ring peak / capacity",
              snapshot.gauges.at("online.ring_peak"), monitor.ringCapacity(),
              ring_overflow ? "  ** OVERFLOW **" : "");

  if (ring_overflow) {
    std::printf("FAIL: ring exceeded its capacity\n");
    return 1;
  }
  if (monitor.incidents().size() < apps.size()) {
    std::printf("FAIL: expected %zu incidents, saw %zu\n", apps.size(),
                monitor.incidents().size());
    return 1;
  }
  return 0;
}
