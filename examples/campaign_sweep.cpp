// campaign_sweep: run a seeded fault-injection campaign and write the
// accuracy-frontier report (JSON + markdown). The CI campaign_smoke job runs
// a capped sweep through this binary and gates on the single-fault resource
// localized rate; the mesh_smoke job runs a mesh-only slice and gates on the
// mesh rate; a full sweep (max_episodes 0) reproduces the complete frontier.
//
// Usage: campaign_sweep [out_dir] [seed] [max_episodes] [gate_rate]
//                       [apps] [mesh_services] [mesh_gate_rate]
//        (defaults: ./campaign, seed 1, 64 episodes, gates disabled,
//         apps "legacy", no mesh episodes)
//        max_episodes 0 runs the full fault space.
//        gate_rate in (0, 1]: exit nonzero when the single-fault resource
//        localized rate falls below it.
//        apps: "legacy" (benchmark sweep only), "mesh" (mesh sweep only),
//        or "all" (both).
//        mesh_services: mesh size for apps "mesh"/"all" (default 80).
//        mesh_gate_rate in (0, 1]: exit nonzero when the mesh correct rate
//        falls below it.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "campaign/report.h"
#include "eval/frontier.h"

using namespace fchain;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "campaign";
  campaign::CampaignConfig config;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;
  config.max_episodes =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 64;
  const double gate_rate = argc > 4 ? std::strtod(argv[4], nullptr) : 0.0;
  const std::string apps = argc > 5 ? argv[5] : "legacy";
  if (apps != "legacy" && apps != "mesh" && apps != "all") {
    std::fprintf(stderr, "unknown apps filter '%s'\n", apps.c_str());
    return 2;
  }
  if (apps != "legacy") {
    config.mesh_services =
        argc > 6 ? std::strtoull(argv[6], nullptr, 10) : 80;
    config.mesh_only = apps == "mesh";
  }
  const double mesh_gate_rate =
      argc > 7 ? std::strtod(argv[7], nullptr) : 0.0;

  const auto result = campaign::runCampaign(
      config, [](std::size_t done, std::size_t total,
                 const campaign::EpisodeRecord& record) {
        if (done % 16 == 0 || done == total) {
          std::printf("  %zu/%zu episodes (last: ep#%zu %s -> %s)\n", done,
                      total, record.spec.id,
                      record.spec.faultLabel().c_str(),
                      std::string(eval::outcomeName(record.outcome)).c_str());
          std::fflush(stdout);
        }
      });

  std::filesystem::create_directories(out_dir);
  eval::writeFrontierJson(out_dir + "/frontier.json", result.report);
  eval::writeFrontierMarkdown(out_dir + "/frontier.md", result.report);

  const eval::FrontierReport& report = result.report;
  std::printf("campaign seed %llu: %zu episodes\n",
              static_cast<unsigned long long>(report.seed),
              report.episode_count);
  for (std::size_t i = 0; i < eval::kOutcomeCount; ++i) {
    const auto outcome = static_cast<eval::Outcome>(i);
    std::printf("  %-22s %zu\n",
                std::string(eval::outcomeName(outcome)).c_str(),
                report.totals.of(outcome));
  }
  std::printf("single-fault resource localized rate: %.3f\n",
              report.single_fault_resource_localized_rate);
  if (report.mesh_episode_count > 0) {
    std::printf("mesh correct rate: %.3f (%zu episodes)\n",
                report.mesh_localized_rate, report.mesh_episode_count);
  }
  std::printf("frontier written to %s/frontier.{json,md}\n", out_dir.c_str());

  if (gate_rate > 0.0 &&
      report.single_fault_resource_localized_rate < gate_rate) {
    std::fprintf(stderr,
                 "GATE FAILED: localized rate %.3f below threshold %.3f\n",
                 report.single_fault_resource_localized_rate, gate_rate);
    return 1;
  }
  if (mesh_gate_rate > 0.0 && report.mesh_localized_rate < mesh_gate_rate) {
    std::fprintf(stderr,
                 "GATE FAILED: mesh correct rate %.3f below threshold %.3f\n",
                 report.mesh_localized_rate, mesh_gate_rate);
    return 1;
  }
  return 0;
}
