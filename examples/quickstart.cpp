// quickstart: the smallest end-to-end FChain walkthrough.
//
//   1. simulate a RUBiS-style cloud application under a diurnal workload;
//   2. inject a CPU hog into the database VM at t = 2000 s;
//   3. wait for the SLO monitor to flag the performance anomaly;
//   4. discover inter-component dependencies from the network trace;
//   5. run FChain's localization and print the verdict.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "fchain/fchain.h"
#include "netdep/dependency.h"

using namespace fchain;

int main() {
  // 1. One RUBiS incident: web -> {app1, app2} -> db.
  sim::ScenarioConfig scenario;
  scenario.kind = sim::AppKind::Rubis;
  scenario.seed = 2024;

  // 2. The fault: a multi-threaded CPU hog lands in the db VM.
  faults::FaultSpec hog;
  hog.type = faults::FaultType::CpuHog;
  hog.targets = {3};  // the database server
  hog.start_time = 2000;
  hog.intensity = 1.35;
  scenario.faults = {hog};

  // 3. Run until the SLO monitor fires (avg response time > 100 ms).
  const sim::ScenarioResult result = sim::runScenario(scenario);
  if (!result.record.violation_time.has_value()) {
    std::printf("the run finished without an SLO violation\n");
    return 1;
  }
  const TimeSec tv = *result.record.violation_time;
  std::printf("SLO violation detected at t=%lld (fault injected at t=2000)\n",
              static_cast<long long>(tv));

  // 4. Black-box dependency discovery from the (simulated) packet trace.
  const auto dependencies = netdep::discoverDependencies(result.record);
  std::printf("discovered %zu dependency edges\n", dependencies.edgeCount());

  // 5. FChain localization.
  const auto verdict = core::localizeRecord(result.record, &dependencies, {});
  if (verdict.external_factor) {
    std::printf("verdict: external factor (%s trend), no component blamed\n",
                std::string(trendName(verdict.external_trend)).c_str());
    return 0;
  }
  std::printf("propagation chain (onset order):");
  for (const auto& finding : verdict.chain) {
    std::printf(" %s@%lld",
                result.record.app_spec.components[finding.component]
                    .name.c_str(),
                static_cast<long long>(finding.onset));
  }
  std::printf("\npinpointed faulty component(s):");
  for (ComponentId id : verdict.pinpointed) {
    std::printf(" %s", result.record.app_spec.components[id].name.c_str());
  }
  std::printf("\n");
  return 0;
}
