// generate_report: run the full evaluation and write a self-contained
// markdown report (plus per-figure CSVs) into a directory — the one-command
// "reproduce the paper" entry point.
//
// Usage: generate_report [out_dir] [trials] [seed]
//        (defaults: ./report, 10 trials, seed 42 — use 30 for paper scale)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "baselines/fchain_scheme.h"
#include "campaign/report.h"
#include "eval/frontier.h"
#include "baselines/graph_schemes.h"
#include "baselines/histogram_scheme.h"
#include "baselines/netmedic.h"
#include "eval/auc.h"
#include "eval/exporter.h"
#include "eval/report.h"
#include "eval/runner.h"

using namespace fchain;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : "report";
  const std::size_t trials =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 10;
  const std::uint64_t seed =
      argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  std::filesystem::create_directories(out_dir);
  std::ofstream md(out_dir + "/REPORT.md");
  md << "# FChain evaluation report\n\n"
     << trials << " trials per fault, base seed " << seed << ".\n\n"
     << "| fault | scheme | best P | best R | best F1 | PR-AUC |\n"
     << "|---|---|---|---|---|---|\n";

  for (const auto& fault_case : eval::allPaperCases()) {
    std::printf("running %s...\n", fault_case.label.c_str());
    eval::TrialOptions options;
    options.trials = trials;
    options.base_seed = seed;
    const auto set = eval::generateTrials(fault_case, options);
    if (set.trials.empty()) {
      md << "| " << fault_case.label << " | — no SLO violations | | | | |\n";
      continue;
    }

    baselines::FChainScheme fchain_scheme(fault_case.fchain_config);
    baselines::HistogramScheme histogram(fault_case.fchain_config.lookback_sec);
    baselines::NetMedicScheme netmedic;
    baselines::TopologyScheme topology(fault_case.fchain_config);
    baselines::DependencyScheme dependency(fault_case.fchain_config);
    baselines::PalScheme pal(fault_case.fchain_config);
    const auto curves = eval::evaluateSchemes(
        {&fchain_scheme, &histogram, &netmedic, &topology, &dependency, &pal},
        set);

    std::string csv_name = fault_case.label;
    for (char& c : csv_name) {
      if (c == '/') c = '_';
    }
    eval::writeCurvesCsv(out_dir + "/" + csv_name + ".csv", curves);

    for (const auto& curve : curves) {
      const auto* best = curve.best();
      if (best == nullptr) continue;
      char row[256];
      std::snprintf(row, sizeof(row),
                    "| %s | %s | %.3f | %.3f | %.3f | %.3f |\n",
                    fault_case.label.c_str(), curve.scheme.c_str(),
                    best->precision, best->recall, best->counts.f1(),
                    eval::prAuc(curve));
      md << row;
    }
  }
  md << "\nPer-figure ROC sweeps are in the adjacent CSV files.\n";

  // Campaign accuracy-frontier summary: a capped seeded sweep of the fault
  // space (scaled by `trials` — paper-scale runs get a wider sample) with
  // the full frontier tables appended and the raw data written as JSON.
  std::printf("running campaign sweep...\n");
  campaign::CampaignConfig campaign_config;
  campaign_config.seed = seed;
  campaign_config.max_episodes = 16 * trials;
  const auto campaign_result = campaign::runCampaign(campaign_config);
  eval::writeFrontierJson(out_dir + "/frontier.json", campaign_result.report);
  md << "\n## Fault-injection campaign frontier\n\n"
     << campaign_result.report.episode_count
     << " episodes sampled from the full fault space (seed " << seed
     << "); raw data in frontier.json. Run bench_campaign_sweep for the"
        " complete >= 1000-episode frontier.\n\n"
     << eval::frontierMarkdown(campaign_result.report);

  std::printf("report written to %s/REPORT.md\n", out_dir.c_str());
  return 0;
}
