// inspect_run: simulate one faulty run and dump FChain's view of it —
// violation time, per-component abnormal change findings (onset, metrics,
// observed vs expected prediction error), the propagation chain, the
// discovered dependency graph, and the final pinpointing verdict.
//
// Usage: inspect_run [case-label] [seed]
//   case-label: one of the paper cases, e.g. RUBiS/CpuHog (default),
//               SystemS/Bottleneck, Hadoop/ConcDiskHog, ...
#include <cstdio>
#include <cstdlib>
#include <string>

#include "eval/runner.h"
#include "fchain/fchain.h"

using namespace fchain;

int main(int argc, char** argv) {
  const std::string label = argc > 1 ? argv[1] : "RUBiS/CpuHog";
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  auto all_cases = eval::allPaperCases();
  for (auto& extension : eval::extensionCases()) {
    all_cases.push_back(std::move(extension));
  }
  eval::FaultCase chosen;
  bool found = false;
  for (const auto& fault_case : all_cases) {
    if (fault_case.label == label) {
      chosen = fault_case;
      found = true;
      break;
    }
  }
  if (!found) {
    std::fprintf(stderr, "unknown case '%s'; known cases:\n", label.c_str());
    for (const auto& fault_case : all_cases) {
      std::fprintf(stderr, "  %s\n", fault_case.label.c_str());
    }
    return 1;
  }

  eval::TrialOptions options;
  options.trials = 1;
  options.base_seed = seed;
  const auto set = eval::generateTrials(chosen, options);
  if (set.trials.empty()) {
    std::printf("run completed without an SLO violation (seed %llu)\n",
                static_cast<unsigned long long>(seed));
    return 0;
  }
  const auto& trial = set.trials.front();
  const auto& record = trial.record;
  const TimeSec tv = *record.violation_time;

  std::printf("case %s  seed %llu\n", label.c_str(),
              static_cast<unsigned long long>(seed));
  std::printf("SLO violation at t=%lld\n", static_cast<long long>(tv));
  std::printf("ground truth:");
  for (ComponentId id : record.ground_truth) {
    std::printf(" %s", record.app_spec.components[id].name.c_str());
  }
  std::printf("\nfault start: t=%lld\n\n",
              static_cast<long long>(record.faults.front().start_time));

  const auto& config = chosen.fchain_config;
  core::AbnormalChangeSelector selector(config);
  std::vector<core::ComponentFinding> findings;
  for (ComponentId id = 0; id < record.metrics.size(); ++id) {
    const auto model =
        core::replayModel(record.metrics[id], tv + 1, config.predictor);
    auto finding =
        selector.analyzeComponent(id, record.metrics[id], model, tv);
    const auto& name = record.app_spec.components[id].name;
    if (!finding.has_value()) {
      std::printf("%-8s normal\n", name.c_str());
      continue;
    }
    std::printf("%-8s ABNORMAL onset=%lld trend=%s\n", name.c_str(),
                static_cast<long long>(finding->onset),
                std::string(trendName(finding->trend)).c_str());
    for (const auto& metric : finding->metrics) {
      std::printf("    %-13s onset=%lld cp=%lld err=%.3f expected=%.3f %s\n",
                  std::string(metricName(metric.metric)).c_str(),
                  static_cast<long long>(metric.onset),
                  static_cast<long long>(metric.change_point),
                  metric.prediction_error, metric.expected_error,
                  std::string(trendName(metric.trend)).c_str());
    }
    findings.push_back(std::move(*finding));
  }

  std::printf("\ndiscovered dependencies (%zu edges):\n",
              trial.discovered.edgeCount());
  for (ComponentId from = 0; from < trial.discovered.componentCount();
       ++from) {
    for (ComponentId to : trial.discovered.adjacency()[from]) {
      std::printf("  %s -> %s\n",
                  record.app_spec.components[from].name.c_str(),
                  record.app_spec.components[to].name.c_str());
    }
  }

  core::IntegratedPinpointer pinpointer(config);
  const auto result = pinpointer.pinpoint(findings, record.metrics.size(),
                                          &trial.discovered);
  if (result.external_factor) {
    std::printf("\nverdict: EXTERNAL FACTOR (%s trend)\n",
                std::string(trendName(result.external_trend)).c_str());
    return 0;
  }
  std::printf("\npinpointed:");
  for (ComponentId id : result.pinpointed) {
    std::printf(" %s", record.app_spec.components[id].name.c_str());
  }
  std::printf("\n");
  return 0;
}
