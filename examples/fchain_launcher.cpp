// fchain_launcher — multi-process deployment supervisor + crash drill.
//
// Spawns N fchain_slave daemons (fork/exec, unix-domain sockets, per-slave
// checkpoint directories), streams the canonical RUBiS CpuHog incident to
// them over the real wire protocol, restarts any daemon that dies, and
// localizes the incident through SocketEndpoints. The verdict is compared
// field-for-field (doubles included) against an in-process reference run
// over LocalEndpoints: the socket transport must be invisible in the result.
//
// With --drill the supervisor SIGKILLs one slave mid-ingest. The restart
// loop revives it, checkpoint recovery rebuilds its models bit-identically
// (journal-then-ingest), the master's SocketEndpoint reconnects through the
// deterministic backoff, and the final localization must still match the
// reference byte-for-byte — the full kill -9 -> restart -> recover -> heal
// story in one process tree.
//
//   fchain_launcher [--slaves N] [--drill] [--log <path>]
//                   [--slave-bin <path>]
//
// Everything the supervisor does is logged to --log (default
// fchain_launcher.log beside the cwd); slave daemon stdout/stderr are
// redirected into the same file so a CI failure artifact holds the whole
// process tree's story, READY/recovery lines included. Exit code 0 iff the
// socket-transport verdict matches the in-process reference.
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fchain/fchain.h"
#include "fchain/slave_service.h"
#include "netdep/dependency.h"
#include "obs/metrics.h"
#include "runtime/slave_registry.h"
#include "runtime/socket_endpoint.h"
#include "sim/simulator.h"

namespace {

using namespace fchain;

// --- Supervisor log (also receives the daemons' stdout/stderr) ------------

std::FILE* g_log = nullptr;

void logf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::va_list copy;
  va_copy(copy, args);
  std::vprintf(fmt, args);
  std::printf("\n");
  if (g_log != nullptr) {
    std::vfprintf(g_log, fmt, copy);
    std::fprintf(g_log, "\n");
    std::fflush(g_log);
  }
  va_end(copy);
  va_end(args);
  std::fflush(stdout);
}

// --- Slave process management ---------------------------------------------

struct SlaveProc {
  HostId host = 0;
  std::string listen;      ///< unix:<path> socket spec
  std::string components;  ///< id:start,... manifest argument
  std::string state_dir;
  pid_t pid = -1;
  int restarts = 0;
};

std::string g_slave_bin;

void spawnSlave(SlaveProc& proc) {
  const pid_t pid = fork();
  if (pid < 0) {
    logf("launcher: fork failed: %s", std::strerror(errno));
    std::exit(1);
  }
  if (pid == 0) {
    // Child: fold the daemon's output into the supervisor log, then exec.
    if (g_log != nullptr) {
      const int fd = fileno(g_log);
      dup2(fd, STDOUT_FILENO);
      dup2(fd, STDERR_FILENO);
    }
    const std::string host = std::to_string(proc.host);
    execl(g_slave_bin.c_str(), "fchain_slave", "--listen",
          proc.listen.c_str(), "--host", host.c_str(), "--components",
          proc.components.c_str(), "--state-dir", proc.state_dir.c_str(),
          static_cast<char*>(nullptr));
    std::fprintf(stderr, "launcher: exec %s failed: %s\n",
                 g_slave_bin.c_str(), std::strerror(errno));
    _exit(127);
  }
  proc.pid = pid;
  logf("launcher: slave host=%u pid=%d listening on %s (restart #%d)",
       proc.host, static_cast<int>(pid), proc.listen.c_str(), proc.restarts);
}

/// Reaps dead slaves and restarts them — the supervisor's core loop body.
/// Returns the number of restarts performed.
int reapAndRestart(std::vector<SlaveProc>& slaves) {
  int restarted = 0;
  for (auto& proc : slaves) {
    if (proc.pid < 0) continue;
    int status = 0;
    const pid_t r = waitpid(proc.pid, &status, WNOHANG);
    if (r != proc.pid) continue;
    if (WIFSIGNALED(status)) {
      logf("launcher: slave host=%u pid=%d died on signal %d; restarting",
           proc.host, static_cast<int>(proc.pid), WTERMSIG(status));
    } else {
      logf("launcher: slave host=%u pid=%d exited with %d; restarting",
           proc.host, static_cast<int>(proc.pid), WEXITSTATUS(status));
    }
    ++proc.restarts;
    ++restarted;
    spawnSlave(proc);
  }
  return restarted;
}

void stopAll(std::vector<SlaveProc>& slaves) {
  for (auto& proc : slaves) {
    if (proc.pid < 0) continue;
    kill(proc.pid, SIGTERM);
  }
  for (auto& proc : slaves) {
    if (proc.pid < 0) continue;
    int status = 0;
    waitpid(proc.pid, &status, 0);
    proc.pid = -1;
  }
}

// --- Verdict comparison ---------------------------------------------------

/// Full-fidelity rendering, raw doubles included: both runs execute on this
/// machine, so the socket transport's f64 bit-cast codec must reproduce
/// every prediction error bit-for-bit — a stronger pin than the
/// cross-platform goldens take.
std::string summarize(const core::PinpointResult& result) {
  std::ostringstream out;
  out << "pinpointed=[";
  for (std::size_t i = 0; i < result.pinpointed.size(); ++i) {
    out << (i != 0 ? "," : "") << result.pinpointed[i];
  }
  out << "] coverage=" << result.coverage << " external="
      << (result.external_factor ? 1 : 0)
      << " trend=" << static_cast<int>(result.external_trend)
      << " unanalyzed=[";
  for (std::size_t i = 0; i < result.unanalyzed.size(); ++i) {
    out << (i != 0 ? "," : "") << result.unanalyzed[i];
  }
  out << "]\n";
  char buf[64];
  for (const auto& finding : result.chain) {
    out << "chain component=" << finding.component
        << " onset=" << finding.onset
        << " trend=" << static_cast<int>(finding.trend) << "\n";
    for (const auto& metric : finding.metrics) {
      std::snprintf(buf, sizeof(buf), "%.17g/%.17g", metric.prediction_error,
                    metric.expected_error);
      out << "  metric=" << static_cast<int>(metric.metric)
          << " onset=" << metric.onset
          << " change_point=" << metric.change_point
          << " trend=" << static_cast<int>(metric.trend) << " err=" << buf
          << "\n";
    }
  }
  return out.str();
}

struct Options {
  int slaves = 2;
  bool drill = false;
  std::string log_path = "fchain_launcher.log";
  std::string slave_bin;
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--slaves") {
      opt.slaves = std::atoi(value().c_str());
    } else if (arg == "--drill") {
      opt.drill = true;
    } else if (arg == "--log") {
      opt.log_path = value();
    } else if (arg == "--slave-bin") {
      opt.slave_bin = value();
    } else {
      std::fprintf(stderr,
                   "usage: %s [--slaves N] [--drill] [--log path] "
                   "[--slave-bin path]\n",
                   argv[0]);
      std::exit(2);
    }
  }
  if (opt.slaves < 1 || opt.slaves > 4) {
    std::fprintf(stderr, "--slaves must be 1..4\n");
    std::exit(2);
  }
  return opt;
}

std::string siblingSlaveBin() {
  char buf[4096];
  const ssize_t n = readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "fchain_slave";
  buf[n] = '\0';
  return (std::filesystem::path(buf).parent_path() / "fchain_slave").string();
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parseArgs(argc, argv);
  g_slave_bin = opt.slave_bin.empty() ? siblingSlaveBin() : opt.slave_bin;
  g_log = std::fopen(opt.log_path.c_str(), "w");
  if (g_log == nullptr) {
    std::fprintf(stderr, "cannot open log %s\n", opt.log_path.c_str());
    return 1;
  }

  constexpr int kComponents = 4;
  logf("launcher: %d slave processes over %d components, drill=%d, slave "
       "binary %s",
       opt.slaves, kComponents, opt.drill ? 1 : 0, g_slave_bin.c_str());

  // --- Simulate the canonical incident once, up front --------------------
  // (RUBiS CpuHog on the db VM, seed 77 — the golden suite's single_fault.)
  faults::FaultSpec fault;
  fault.type = faults::FaultType::CpuHog;
  fault.targets = {3};
  fault.start_time = 2000;
  fault.intensity = 1.35;
  sim::ScenarioConfig sim_config;
  sim_config.kind = sim::AppKind::Rubis;
  sim_config.seed = 77;
  sim_config.faults = {fault};
  sim::Simulation sim(sim_config);
  std::vector<std::array<std::array<double, kMetricCount>, kComponents>>
      samples;
  while (!sim.violationTime().has_value() && sim.now() < 3600) {
    sim.step();
    const TimeSec t = sim.now() - 1;
    samples.emplace_back();
    for (ComponentId id = 0; id < kComponents; ++id) {
      for (MetricKind kind : kAllMetrics) {
        samples.back()[id][metricIndex(kind)] =
            sim.app().metricsOf(id).of(kind).at(t);
      }
    }
  }
  if (!sim.violationTime().has_value()) {
    logf("launcher: simulation never violated its SLO; aborting");
    return 1;
  }
  const TimeSec tv = *sim.violationTime();
  const netdep::DependencyGraph deps = netdep::discoverDependencies(
      sim.record());
  logf("launcher: incident simulated, violation at t=%lld over %zu seconds",
       static_cast<long long>(tv), samples.size());

  // Contiguous component partition: slave i owns [i*4/N, (i+1)*4/N).
  std::array<int, kComponents> owner{};
  for (ComponentId id = 0; id < kComponents; ++id) {
    owner[id] = static_cast<int>(id) * opt.slaves / kComponents;
  }

  // --- In-process reference run ------------------------------------------
  // Same partition, same ingestAt path the daemons use, LocalEndpoints.
  std::string reference;
  {
    std::vector<std::unique_ptr<core::FChainSlave>> ref_slaves;
    for (int i = 0; i < opt.slaves; ++i) {
      ref_slaves.push_back(
          std::make_unique<core::FChainSlave>(static_cast<HostId>(i)));
    }
    for (ComponentId id = 0; id < kComponents; ++id) {
      ref_slaves[owner[id]]->addComponent(id, 0);
    }
    for (std::size_t t = 0; t < samples.size(); ++t) {
      for (ComponentId id = 0; id < kComponents; ++id) {
        ref_slaves[owner[id]]->ingestAt(id, static_cast<TimeSec>(t),
                                        samples[t][id]);
      }
    }
    core::FChainMaster master;
    for (auto& slave : ref_slaves) master.registerSlave(slave.get());
    master.setDependencies(deps);
    reference = summarize(master.localize({0, 1, 2, 3}, tv));
  }
  logf("launcher: reference verdict:\n%s", reference.c_str());

  // --- Spawn the process tree --------------------------------------------
  char dir_template[] = "/tmp/fchain_launcher_XXXXXX";
  const char* work_dir = mkdtemp(dir_template);
  if (work_dir == nullptr) {
    logf("launcher: mkdtemp failed: %s", std::strerror(errno));
    return 1;
  }
  std::vector<SlaveProc> slaves(static_cast<std::size_t>(opt.slaves));
  for (int i = 0; i < opt.slaves; ++i) {
    SlaveProc& proc = slaves[static_cast<std::size_t>(i)];
    proc.host = static_cast<HostId>(i);
    proc.listen = std::string("unix:") + work_dir + "/s" +
                  std::to_string(i) + ".sock";
    proc.state_dir = std::string(work_dir) + "/state" + std::to_string(i);
    std::filesystem::create_directories(proc.state_dir);
    std::string manifest;
    for (ComponentId id = 0; id < kComponents; ++id) {
      if (owner[id] != i) continue;
      if (!manifest.empty()) manifest += ",";
      manifest += std::to_string(id) + ":0";
    }
    proc.components = manifest;
    spawnSlave(proc);
  }

  // --- Connect endpoints (waiting out daemon startup) ---------------------
  std::vector<std::shared_ptr<runtime::SocketEndpoint>> endpoints;
  for (const auto& proc : slaves) {
    runtime::SocketEndpointConfig config;
    config.address = runtime::SocketAddress::parse(proc.listen);
    config.backoff_seed = proc.host;
    auto endpoint = std::make_shared<runtime::SocketEndpoint>(config);
    bool up = false;
    for (int attempt = 0; attempt < 100 && !up; ++attempt) {
      up = endpoint->listComponents().status == runtime::EndpointStatus::Ok;
      if (!up) std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!up) {
      logf("launcher: slave host=%u never came up at %s", proc.host,
           proc.listen.c_str());
      stopAll(slaves);
      return 1;
    }
    logf("launcher: connected host=%u identity=%016llx", proc.host,
         static_cast<unsigned long long>(endpoint->identity()));
    endpoints.push_back(std::move(endpoint));
  }

  // --- Stream the incident over the wire ----------------------------------
  // Fire-and-forget semantics with a supervisor twist: a failed push is
  // retried (the sample is re-sent after reconnect; the slave's duplicate
  // path makes that value-safe) so the drill cannot silently starve the
  // killed slave's models.
  const std::size_t drill_at = samples.size() / 2;
  bool drill_fired = false;
  for (std::size_t t = 0; t < samples.size(); ++t) {
    if (opt.drill && !drill_fired && t == drill_at) {
      SlaveProc& victim = slaves.back();
      logf("launcher: DRILL kill -9 slave host=%u pid=%d at t=%zu",
           victim.host, static_cast<int>(victim.pid), t);
      kill(victim.pid, SIGKILL);
      drill_fired = true;
    }
    for (ComponentId id = 0; id < kComponents; ++id) {
      runtime::IngestRequest request;
      request.component = id;
      request.t = static_cast<TimeSec>(t);
      request.sample = samples[t][id];
      auto& endpoint = endpoints[static_cast<std::size_t>(owner[id])];
      bool delivered = false;
      for (int attempt = 0; attempt < 200 && !delivered; ++attempt) {
        delivered =
            endpoint->ingest(request).status == runtime::EndpointStatus::Ok;
        if (!delivered) {
          reapAndRestart(slaves);
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
      if (!delivered) {
        logf("launcher: sample t=%zu component=%u undeliverable; giving up",
             t, id);
        stopAll(slaves);
        return 1;
      }
    }
    reapAndRestart(slaves);
  }
  logf("launcher: %zu seconds streamed over the wire", samples.size());

  // --- Localize through the socket transport ------------------------------
  core::FChainMaster master;
  runtime::SlaveRegistry registry;
  try {
    for (auto& endpoint : endpoints) {
      const std::uint64_t identity = core::connectSlave(master, registry,
                                                        endpoint);
      logf("launcher: registered host=%u identity=%016llx", endpoint->host(),
           static_cast<unsigned long long>(identity));
    }
  } catch (const std::exception& e) {
    logf("launcher: registration failed: %s", e.what());
    stopAll(slaves);
    return 1;
  }
  master.setDependencies(deps);
  const std::string verdict = summarize(master.localize({0, 1, 2, 3}, tv));
  logf("launcher: socket-transport verdict:\n%s", verdict.c_str());

  auto& metrics = obs::metrics();
  logf("launcher: socket metrics connects=%llu reconnects=%llu "
       "frames_tx=%llu frames_rx=%llu crc_errors=%llu torn_frames=%llu",
       static_cast<unsigned long long>(
           metrics.counter("runtime.socket.connects").value()),
       static_cast<unsigned long long>(
           metrics.counter("runtime.socket.reconnects").value()),
       static_cast<unsigned long long>(
           metrics.counter("runtime.socket.frames_tx").value()),
       static_cast<unsigned long long>(
           metrics.counter("runtime.socket.frames_rx").value()),
       static_cast<unsigned long long>(
           metrics.counter("runtime.socket.crc_errors").value()),
       static_cast<unsigned long long>(
           metrics.counter("runtime.socket.torn_frames").value()));
  if (opt.drill) {
    int restarts = 0;
    for (const auto& proc : slaves) restarts += proc.restarts;
    logf("launcher: drill restarts=%d", restarts);
    if (restarts < 1) {
      logf("launcher: FAIL — drill fired but no slave was restarted");
      stopAll(slaves);
      return 1;
    }
  }

  stopAll(slaves);
  std::error_code ec;
  std::filesystem::remove_all(work_dir, ec);

  if (verdict != reference) {
    logf("launcher: FAIL — socket-transport verdict diverges from the "
         "in-process reference");
    return 1;
  }
  logf("launcher: OK — socket transport is invisible in the verdict "
       "(%d slave processes%s)",
       opt.slaves, opt.drill ? ", kill -9 drill healed" : "");
  return 0;
}
